//! The ten lint rules.
//!
//! Every rule is a pure function from scrubbed sources to diagnostics;
//! the driver in [`crate::run_lint`] handles file discovery, scrubbing
//! and pragma suppression. Code rules operate per line on a
//! whitespace-condensed copy of the scrubbed line, so `Instant :: now`
//! and `Instant::now` both match while anything inside comments, string
//! literals or `#[cfg(test)]` modules never does.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::scrub::Scrubbed;

/// Crates whose `src/` trees are simulation code: nothing inside them may
/// observe wall-clock time, OS threads or unordered iteration, because
/// all of it can reach the event queue and break seed-determinism.
pub const SIM_CRATES: &[&str] = &[
    "trace",
    "rt",
    "rnic",
    "core",
    "race",
    "ford",
    "sherman",
    "workloads",
    "check",
    "fault",
];

/// Files on the simulator's per-event hot path: the executor's ready
/// loop and timer wheel (touched once per poll / timer fire) and the
/// RNIC's per-WR dispatch (QP completion and doorbell paths, touched
/// once per work request). A stray `format!` in any of these taxes every
/// simulated event of every run — see [`hot_path_alloc`]. Unlike
/// [`SIM_CRATES`], this list names individual files: the rest of those
/// crates may allocate freely.
pub const HOT_PATHS: &[&str] = &[
    "crates/rt/src/executor.rs",
    "crates/rt/src/wheel.rs",
    "crates/rnic/src/qp.rs",
    "crates/rnic/src/doorbell.rs",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the linted root.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (e.g. `wall-clock`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A scrubbed workspace source file, ready for rule matching.
pub struct SourceFile {
    /// Path relative to the linted root, with `/` separators.
    pub rel: PathBuf,
    pub scrubbed: Scrubbed,
}

impl SourceFile {
    /// True if this file is non-test simulation code.
    pub fn is_sim_src(&self) -> bool {
        let s = self.rel.to_string_lossy().replace('\\', "/");
        SIM_CRATES
            .iter()
            .any(|c| s.starts_with(&format!("crates/{c}/src/")))
    }

    /// Scrubbed lines paired with their whitespace-condensed form.
    fn condensed_lines(&self) -> impl Iterator<Item = (usize, String)> + '_ {
        self.scrubbed.text.lines().enumerate().map(|(i, l)| {
            (
                i + 1,
                l.chars().filter(|c| !c.is_whitespace()).collect::<String>(),
            )
        })
    }
}

/// True if `needle` occurs in `hay` delimited by non-identifier chars.
fn has_ident(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

fn diag(
    file: &SourceFile,
    line: usize,
    rule: &'static str,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    if !file.scrubbed.allowed(rule, line) {
        out.push(Diagnostic {
            path: file.rel.clone(),
            line,
            rule,
            message,
        });
    }
}

/// Rule 1 — `wall-clock`: simulation code must be driven by `SimTime`
/// only; real clocks make runs irreproducible.
pub fn wall_clock(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    for (line, l) in file.condensed_lines() {
        for pat in ["Instant::now", "std::time::Instant", "SystemTime"] {
            if l.contains(pat) {
                diag(
                    file,
                    line,
                    "wall-clock",
                    format!("`{pat}` in sim code; only SimTime may drive time"),
                    out,
                );
                break;
            }
        }
    }
}

/// Rule 2 — `os-concurrency`: the executor is single-threaded; OS
/// threads and blocking sync primitives mask scheduling bugs.
pub fn os_concurrency(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    for (line, l) in file.condensed_lines() {
        let hit = if l.contains("thread::spawn") || l.contains("std::thread") {
            Some("std::thread")
        } else if l.contains("std::sync::Mutex") {
            Some("std::sync::Mutex")
        } else if l.contains("std::sync::RwLock") {
            Some("std::sync::RwLock")
        } else if l.contains("std::sync::Condvar") || has_ident(&l, "Condvar") {
            Some("Condvar")
        } else if l.contains("std::sync::{") && (has_ident(&l, "Mutex") || has_ident(&l, "RwLock"))
        {
            Some("std::sync::{Mutex|RwLock}")
        } else {
            None
        };
        if let Some(pat) = hit {
            diag(
                file,
                line,
                "os-concurrency",
                format!("`{pat}` in sim code; the executor is single-threaded — use smart_rt::sync primitives"),
                out,
            );
        }
    }
}

/// Rule 3 — `unordered-iter`: `HashMap`/`HashSet` iteration order is
/// randomized per process; if it reaches the event queue, two runs with
/// one seed diverge. Sim code must use `BTreeMap`/`BTreeSet`/`Vec`, or
/// carry a pragma arguing the map is never iterated.
pub fn unordered_iter(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    for (line, l) in file.condensed_lines() {
        for pat in ["HashMap", "HashSet"] {
            if has_ident(&l, pat) {
                diag(
                    file,
                    line,
                    "unordered-iter",
                    format!(
                        "`{pat}` in sim code; iteration order is unseeded — use BTreeMap/BTreeSet/Vec \
                         or justify with lint:allow(unordered-iter)"
                    ),
                    out,
                );
                break;
            }
        }
    }
}

/// Rule 4 — `unseeded-rng`: all randomness must come from the seeded
/// PRNG in `smart_rt::rng`; entropy-seeded generators break replay.
/// Applies to every workspace source, tests included.
pub fn unseeded_rng(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (line, l) in file.condensed_lines() {
        for pat in ["thread_rng", "from_entropy", "OsRng", "rand::random"] {
            let hit = if pat.contains("::") {
                l.contains(pat)
            } else {
                has_ident(&l, pat)
            };
            if hit {
                diag(
                    file,
                    line,
                    "unseeded-rng",
                    format!("`{pat}` draws OS entropy; use the seeded smart_rt::rng::SimRng"),
                    out,
                );
                break;
            }
        }
    }
}

/// Extracts the binding name from a condensed `let NAME = …` line, or
/// `None` for patterns, `_`-discards and plain expression statements
/// (whose temporaries drop at the end of the statement anyway).
fn let_binding(l: &str) -> Option<String> {
    let rest = l.strip_prefix("let")?;
    let rest = rest.strip_prefix("mut").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name == "_" || !rest[name.len()..].starts_with(['=', ':']) {
        return None;
    }
    Some(name)
}

/// Rule 7 — `await-holding-guard`: a probed lock guard
/// (`Semaphore::acquire_guard` / `ContendedLock::enter_as`) bound across
/// an `.await` keeps its lock held through a suspension point — the
/// exact window the `smart-check` atomicity sanitizer hunts. Sim code
/// must release the guard before suspending or justify the hold with a
/// pragma.
pub fn await_holding_guard(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    struct LiveGuard {
        name: String,
        depth: i32,
        line: usize,
    }
    let mut depth: i32 = 0;
    let mut guards: Vec<LiveGuard> = Vec::new();
    for (line, l) in file.condensed_lines() {
        let depth_after = depth + l.matches('{').count() as i32 - l.matches('}').count() as i32;
        // Explicit release ends the hold.
        guards.retain(|g| {
            !(l.contains(&format!("drop({})", g.name))
                || l.contains(&format!("{}.release(", g.name)))
        });
        let acquires = l.contains(".acquire_guard(") || l.contains(".enter_as(");
        if acquires {
            // The acquiring line's own `.await` is the acquisition
            // itself, never a held-across suspension.
            if let Some(name) = let_binding(&l) {
                guards.push(LiveGuard {
                    name,
                    depth: depth_after,
                    line,
                });
            }
        } else if l.contains(".await") {
            if let Some(g) = guards.last() {
                diag(
                    file,
                    line,
                    "await-holding-guard",
                    format!(
                        "`.await` while guard `{}` (line {}) holds its lock; release before \
                         suspending or justify with lint:allow(await-holding-guard)",
                        g.name, g.line
                    ),
                    out,
                );
            }
        }
        depth = depth_after;
        // Scope exit drops whatever is still bound inside it.
        guards.retain(|g| g.depth <= depth);
    }
}

/// Rule 8 — `rc-identity`: `Rc::as_ptr` / `Rc::ptr_eq` expose heap
/// addresses, which vary across runs even with one seed. Ordering,
/// hashing or keying on them silently breaks replay; uses that only
/// compare or count (never order) carry a pragma with the argument.
pub fn rc_identity(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    for (line, l) in file.condensed_lines() {
        for pat in ["Rc::as_ptr", "Rc::ptr_eq"] {
            if l.contains(pat) {
                diag(
                    file,
                    line,
                    "rc-identity",
                    format!(
                        "`{pat}` exposes a heap address, which is not seed-stable; key on a \
                         stable id instead or justify with lint:allow(rc-identity)"
                    ),
                    out,
                );
                break;
            }
        }
    }
}

/// The fallible verbs the recovery layer exposes: each returns a
/// `Result` whose `Err` is a typed fault (`FaultError` or an app-level
/// wrapper). Panicking on one throws away the recovery semantics the
/// verb exists to provide.
const FALLIBLE_VERBS: &[&str] = &[
    "try_sync",
    "try_read_sync",
    "try_write_sync",
    "try_cas_sync",
    "try_faa_sync",
    "try_roundtrip",
    "try_get",
];

/// Rule 9 — `fallible-unhandled`: `.unwrap()` / `.expect(…)` on the
/// result of a fallible `try_*` verb in sim code converts a typed,
/// recoverable fault into a panic. Propagate with `?`, match on the
/// error, or degrade deliberately with `unwrap_or_else` (which this
/// rule never matches — a closure is an explicit decision).
pub fn fallible_unhandled(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    // Chained calls routinely split across lines
    // (`coro.try_sync()\n.await\n.unwrap()`), so matching is per
    // statement: lines accumulate until one ends in `;`, `{` or `}`.
    let mut verb: Option<&str> = None;
    for (line, l) in file.condensed_lines() {
        if verb.is_none() {
            verb = FALLIBLE_VERBS
                .iter()
                .find(|v| has_ident(&l, v) && l.contains(&format!("{v}(")))
                .copied();
        }
        if let Some(v) = verb {
            let sink = if l.contains(".unwrap()") {
                Some(".unwrap()")
            } else if l.contains(".expect(") {
                Some(".expect(…)")
            } else {
                None
            };
            if let Some(sink) = sink {
                diag(
                    file,
                    line,
                    "fallible-unhandled",
                    format!(
                        "`{sink}` on a `{v}` result panics on a recoverable fault; \
                         propagate with `?` or handle with unwrap_or_else"
                    ),
                    out,
                );
                verb = None;
            }
        }
        if l.ends_with(';') || l.ends_with('{') || l.ends_with('}') {
            verb = None;
        }
    }
}

/// Rule 10 — `hot-path-alloc`: no `format!` / `.to_string()` /
/// `Vec::new()` / `String::new()` in the files listed in [`HOT_PATHS`].
/// These run once per simulated event (executor poll loop, timer wheel,
/// rnic per-WR dispatch), where a hidden allocation or formatting pass
/// is a constant tax on every experiment. Construction-time allocations
/// (building a slab or table once) carry a pragma with that argument.
pub fn hot_path_alloc(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let rel = file.rel.to_string_lossy().replace('\\', "/");
    if !HOT_PATHS.contains(&rel.as_str()) {
        return;
    }
    for (line, l) in file.condensed_lines() {
        for pat in ["format!(", ".to_string(", "Vec::new()", "String::new()"] {
            if l.contains(pat) {
                diag(
                    file,
                    line,
                    "hot-path-alloc",
                    format!(
                        "`{pat}` in a per-event hot-path file; allocate at construction time \
                         or justify with lint:allow(hot-path-alloc)"
                    ),
                    out,
                );
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// calibration-drift
// ---------------------------------------------------------------------------

/// A numeric config field parsed out of a scrubbed Rust source.
fn field_value(file: &SourceFile, field: &str) -> Option<(usize, f64)> {
    let marker = format!("{field}:");
    for (line, l) in file.condensed_lines() {
        let Some(pos) = l.find(&marker) else { continue };
        let rest = &l[pos + marker.len()..];
        // Either a literal (`uar_medium:12,`) or a duration constructor
        // (`base_service:Duration::from_nanos(9),`).
        let num = if let Some(inner) = rest.strip_prefix("Duration::from_nanos(") {
            parse_number(inner)
        } else if let Some(inner) = rest.strip_prefix("Duration::from_micros(") {
            parse_number(inner).map(|v| v * 1_000.0)
        } else {
            parse_number(rest)
        };
        if let Some(v) = num {
            return Some((line, v));
        }
    }
    None
}

/// Parses a leading `f64` allowing `_` separators; `None` if the text
/// does not start with a digit.
fn parse_number(s: &str) -> Option<f64> {
    let cleaned: String = s
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_' || *c == '.')
        .filter(|c| *c != '_')
        .collect();
    if cleaned.is_empty() || !cleaned.starts_with(|c: char| c.is_ascii_digit()) {
        return None;
    }
    cleaned.trim_end_matches('.').parse().ok()
}

/// Finds the first number in `s` at or after `from`.
fn first_number(s: &str) -> Option<f64> {
    let start = s.find(|c: char| c.is_ascii_digit())?;
    parse_number(&s[start..])
}

/// Finds the number immediately preceding `marker` on the same line.
fn number_before(line: &str, marker: &str) -> Option<f64> {
    let pos = line.find(marker)?;
    let head = line[..pos].trim_end();
    let tail_start = head
        .rfind(|c: char| !(c.is_ascii_digit() || c == '_' || c == '.'))
        .map(|p| p + 1)
        .unwrap_or(0);
    parse_number(&head[tail_start..])
}

/// The calibration constants DESIGN.md §4 promises.
#[derive(Debug, PartialEq)]
pub struct DesignCalibration {
    /// Hardware IOPS ceiling in MOPS ("110 MOPS ceiling").
    pub mops_ceiling: f64,
    /// Doorbells per device context ("Doorbells: 16 per context").
    pub doorbells: f64,
    /// WQE cache capacity ("1024-entry capacity-pressure model").
    pub wqe_entries: f64,
    /// Backoff unit in cycles ("t0 = 4096 cycles").
    pub t0_cycles: f64,
    /// Fabric roundtrip budget in µs ("2 µs roundtrip budget").
    pub roundtrip_us: f64,
}

/// Extracts the §4 constants from DESIGN.md prose. Returns Err with the
/// missing anchor phrase when the doc was reworded past recognition —
/// the lint then fails, which is exactly the drift signal we want.
pub fn parse_design_calibration(design: &str) -> Result<DesignCalibration, String> {
    let mut mops = None;
    let mut doorbells = None;
    let mut wqe = None;
    let mut t0 = None;
    let mut rt = None;
    for line in design.lines() {
        if mops.is_none() && line.contains("MOPS ceiling") {
            mops = number_before(line, "MOPS ceiling");
        }
        if doorbells.is_none() {
            if let Some(pos) = line.find("Doorbells:") {
                doorbells = first_number(&line[pos..]);
            }
        }
        if wqe.is_none() && line.contains("-entry") && line.contains("WQE cache") {
            wqe = number_before(line, "-entry");
        }
        if t0.is_none() {
            if let Some(pos) = line.find("t0 = ") {
                t0 = first_number(&line[pos + 5..]);
            }
        }
        if rt.is_none() && line.contains("roundtrip budget") {
            rt = number_before(line, "µs roundtrip budget");
        }
    }
    Ok(DesignCalibration {
        mops_ceiling: mops.ok_or("§4 'NNN MOPS ceiling'")?,
        doorbells: doorbells.ok_or("§4 'Doorbells: NN per context'")?,
        wqe_entries: wqe.ok_or("§4 'NNNN-entry … WQE cache'")?,
        t0_cycles: t0.ok_or("§4 't0 = NNNN cycles'")?,
        roundtrip_us: rt.ok_or("§4 'N µs roundtrip budget'")?,
    })
}

/// Rule 5 — `calibration-drift`: DESIGN.md §4 constants must match the
/// defaults in `smart_rnic::config` (and `t0` in `smart::config`).
///
/// `design` is the raw DESIGN.md text; `rnic_cfg`/`core_cfg` are the
/// scrubbed config sources. Ceiling tolerance is 2.5 % (the doc rounds
/// 111.1 down to the paper's 110); the roundtrip budget tolerance is
/// 25 % because the doc states an approximate budget, not a parameter.
pub fn calibration_drift(
    design_path: &Path,
    design: &str,
    rnic_cfg: &SourceFile,
    core_cfg: &SourceFile,
    out: &mut Vec<Diagnostic>,
) {
    let cal = match parse_design_calibration(design) {
        Ok(c) => c,
        Err(anchor) => {
            out.push(Diagnostic {
                path: design_path.to_path_buf(),
                line: 1,
                rule: "calibration-drift",
                message: format!("could not find {anchor} in DESIGN.md — doc and lint drifted"),
            });
            return;
        }
    };
    fn check(
        file: &SourceFile,
        field: &str,
        expect: f64,
        tol: f64,
        what: &str,
        out: &mut Vec<Diagnostic>,
    ) {
        match field_value(file, field) {
            Some((line, got)) if (got - expect).abs() > tol => diag(
                file,
                line,
                "calibration-drift",
                format!("{what}: config has {got}, DESIGN.md §4 says {expect}"),
                out,
            ),
            Some(_) => {}
            None => out.push(Diagnostic {
                path: file.rel.clone(),
                line: 1,
                rule: "calibration-drift",
                message: format!(
                    "could not parse default `{field}` out of {}",
                    file.rel.display()
                ),
            }),
        }
    }
    // base_service ns → MOPS ceiling.
    match field_value(rnic_cfg, "base_service") {
        Some((line, ns)) if ns > 0.0 => {
            let mops = 1_000.0 / ns;
            if (mops - cal.mops_ceiling).abs() > cal.mops_ceiling * 0.025 {
                diag(
                    rnic_cfg,
                    line,
                    "calibration-drift",
                    format!(
                        "IOPS ceiling: base_service {ns} ns ⇒ {mops:.1} MOPS, DESIGN.md §4 says {} MOPS",
                        cal.mops_ceiling
                    ),
                    out,
                );
            }
        }
        _ => out.push(Diagnostic {
            path: rnic_cfg.rel.clone(),
            line: 1,
            rule: "calibration-drift",
            message: "could not parse default `base_service`".into(),
        }),
    }
    // Doorbell count is the sum of the low-latency and medium pools.
    match (
        field_value(rnic_cfg, "uar_low_latency"),
        field_value(rnic_cfg, "uar_medium"),
    ) {
        (Some((line, low)), Some((_, med))) => {
            if low + med != cal.doorbells {
                diag(
                    rnic_cfg,
                    line,
                    "calibration-drift",
                    format!(
                        "doorbells per context: config has {} + {} = {}, DESIGN.md §4 says {}",
                        low,
                        med,
                        low + med,
                        cal.doorbells
                    ),
                    out,
                );
            }
        }
        _ => out.push(Diagnostic {
            path: rnic_cfg.rel.clone(),
            line: 1,
            rule: "calibration-drift",
            message: "could not parse default `uar_low_latency`/`uar_medium`".into(),
        }),
    }
    check(
        rnic_cfg,
        "wqe_cache_entries",
        cal.wqe_entries,
        0.0,
        "WQE cache entries",
        out,
    );
    check(
        core_cfg,
        "t0_cycles",
        cal.t0_cycles,
        0.0,
        "backoff unit t0",
        out,
    );
    // one_way_latency ns ×2 vs the roundtrip budget.
    match field_value(rnic_cfg, "one_way_latency")
        .or_else(|| field_value(core_cfg, "one_way_latency"))
    {
        Some((line, _)) => {
            // The field lives in FabricConfig inside the rnic config file.
            let (line, ns) = field_value(rnic_cfg, "one_way_latency").unwrap_or((line, 0.0));
            let rt_us = 2.0 * ns / 1_000.0;
            if (rt_us - cal.roundtrip_us).abs() > cal.roundtrip_us * 0.25 {
                diag(
                    rnic_cfg,
                    line,
                    "calibration-drift",
                    format!(
                        "fabric roundtrip: 2 × one_way_latency = {rt_us:.2} µs, DESIGN.md §4 budgets {} µs (±25 %)",
                        cal.roundtrip_us
                    ),
                    out,
                );
            }
        }
        None => out.push(Diagnostic {
            path: rnic_cfg.rel.clone(),
            line: 1,
            rule: "calibration-drift",
            message: "could not parse default `one_way_latency`".into(),
        }),
    }
}

/// Rule 6 — `bench-index-drift`: every bench target named in DESIGN.md
/// §3's experiment index must exist under `crates/bench/benches/`.
pub fn bench_index_drift(root: &Path, design_path: &Path, design: &str, out: &mut Vec<Diagnostic>) {
    for (i, line) in design.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("bench/benches/") {
            let tail = &rest[pos..];
            let Some(end) = tail.find(".rs") else { break };
            let rel = &tail[..end + 3];
            let on_disk = root.join("crates").join(rel);
            if !on_disk.is_file() {
                out.push(Diagnostic {
                    path: design_path.to_path_buf(),
                    line: i + 1,
                    rule: "bench-index-drift",
                    message: format!(
                        "experiment index names `{rel}` but crates/{rel} does not exist"
                    ),
                });
            }
            rest = &tail[end + 3..];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub;

    fn sim_file(src: &str) -> SourceFile {
        SourceFile {
            rel: PathBuf::from("crates/rt/src/fake.rs"),
            scrubbed: scrub(src),
        }
    }

    #[test]
    fn ident_matching_respects_boundaries() {
        assert!(!has_ident("useHashMap;", "HashMap"));
        assert!(has_ident("x: HashMap<u64,u32>", "HashMap"));
        assert!(!has_ident("MyHashMapLike", "HashMap"));
    }

    #[test]
    fn wall_clock_flags_and_pragma_suppresses() {
        let mut out = Vec::new();
        wall_clock(&sim_file("let t = Instant::now();"), &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        wall_clock(
            &sim_file("let t = Instant::now(); // lint:allow(wall-clock)"),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn non_sim_crates_are_exempt_from_sim_rules() {
        let file = SourceFile {
            rel: PathBuf::from("crates/bench/benches/micro.rs"),
            scrubbed: scrub("let t = Instant::now();"),
        };
        let mut out = Vec::new();
        wall_clock(&file, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn await_holding_guard_flags_only_held_awaits() {
        let src = "\
async fn f(sem: &Semaphore) {
    let g = sem.acquire_guard(1, &h, actor, \"slot\").await;
    other_work().await;
    g.release();
    late_work().await;
}
";
        let mut out = Vec::new();
        await_holding_guard(&sim_file(src), &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("guard `g`"));
    }

    #[test]
    fn await_holding_guard_scope_exit_ends_the_hold() {
        let src = "\
async fn f(lock: &ContendedLock) {
    {
        let section = lock.enter_as(hold, actor, \"qp_lock\").await;
        drop(section);
    }
    fine().await;
}
";
        let mut out = Vec::new();
        await_holding_guard(&sim_file(src), &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn await_holding_guard_pragma_suppresses() {
        let src = "\
async fn f(sem: &Semaphore) {
    let g = sem.acquire_guard(1, &h, actor, \"slot\").await;
    // intentional: measured hold. lint:allow(await-holding-guard)
    other_work().await;
    g.release();
}
";
        let mut out = Vec::new();
        await_holding_guard(&sim_file(src), &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn rc_identity_flags_and_pragma_suppresses() {
        let mut out = Vec::new();
        rc_identity(
            &sim_file("v.sort_by_key(|r| Rc::as_ptr(r) as usize);"),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("Rc::as_ptr"));
        out.clear();
        rc_identity(
            &sim_file("// equality only. lint:allow(rc-identity)\nif Rc::ptr_eq(&a, &b) {}"),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn fallible_unhandled_flags_same_line_and_chained() {
        let mut out = Vec::new();
        fallible_unhandled(
            &sim_file("let cqes = coro.try_sync().await.unwrap();"),
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("try_sync"));

        out.clear();
        let chained = "\
let v = table
    .try_get(&coro, key)
    .await
    .expect(\"lookup\");
";
        fallible_unhandled(&sim_file(chained), &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].line, 4);
        assert!(out[0].message.contains("try_get"));
    }

    #[test]
    fn fallible_unhandled_spares_handled_results() {
        let mut out = Vec::new();
        let src = "\
let cqes = coro.try_sync().await?;
let v = coro.try_read_sync(addr, 8).await.unwrap_or_else(|e| panic!(\"{e}\"));
let w = unrelated.unwrap();
coro.try_cas_sync(a, 0, 1).await.unwrap(); // planted seed. lint:allow(fallible-unhandled)
";
        fallible_unhandled(&sim_file(src), &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn hot_path_alloc_fires_only_in_hot_files() {
        let hot = SourceFile {
            rel: PathBuf::from("crates/rt/src/executor.rs"),
            scrubbed: scrub("let label = format!(\"task {id}\");"),
        };
        let mut out = Vec::new();
        hot_path_alloc(&hot, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("format!("));

        // The same line in a non-hot sim file is fine (other rules own
        // determinism; this one only owns the per-event paths).
        let warm = SourceFile {
            rel: PathBuf::from("crates/rt/src/metrics.rs"),
            scrubbed: scrub("let label = format!(\"task {id}\");"),
        };
        out.clear();
        hot_path_alloc(&warm, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn hot_path_alloc_pragma_and_tests_are_spared() {
        let src = "\
fn new() -> Self {
    // slab grows once at construction. lint:allow(hot-path-alloc)
    let slab = Vec::new();
    Self { slab }
}
#[cfg(test)]
mod tests {
    fn t() { let v = Vec::new(); }
}
";
        let hot = SourceFile {
            rel: PathBuf::from("crates/rnic/src/qp.rs"),
            scrubbed: scrub(src),
        };
        let mut out = Vec::new();
        hot_path_alloc(&hot, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn parse_number_handles_underscores() {
        assert_eq!(parse_number("1_150),"), Some(1150.0));
        assert_eq!(parse_number("9.09 ns"), Some(9.09));
        assert_eq!(parse_number("abc"), None);
    }

    #[test]
    fn design_extraction_finds_all_constants() {
        let doc = "\
* RNIC pipeline: 9.09 ns/WQE base service ⇒ 110 MOPS ceiling (§6.1).
* Doorbells: 16 per context (4 low-latency: 1 QP each; 12 medium).
* WQE cache: 1024-entry capacity-pressure model; a miss adds 13 ns.
* Backoff unit: `t0 = 4096 cycles` at 2.4 GHz ≈ 1.7 µs.
* Fabric: 2 µs roundtrip budget, 200 Gbps links.
";
        let cal = parse_design_calibration(doc).expect("parses");
        assert_eq!(cal.mops_ceiling, 110.0);
        assert_eq!(cal.doorbells, 16.0);
        assert_eq!(cal.wqe_entries, 1024.0);
        assert_eq!(cal.t0_cycles, 4096.0);
        assert_eq!(cal.roundtrip_us, 2.0);
    }
}
