//! The seventeen lint rules, hosted on the token/scope engine.
//!
//! Every rule is a pure function from scrubbed sources to diagnostics;
//! the driver in [`crate::run_lint`] handles file discovery, scrubbing
//! and pragma suppression. The pattern rules operate per line on the
//! condensed projection the lexer builds (byte-identical to the
//! pre-refactor engine's whitespace-stripped lines, so `Instant :: now`
//! and `Instant::now` both match while anything inside comments, string
//! literals or `#[cfg(test)]` modules never does). The structural rules
//! ([`await_holding_guard`], [`hot_path_alloc`], [`alias_evasion`],
//! [`unordered_iter_binding`], [`panic_in_recovery`], [`layering`]) walk
//! the token stream and the item/scope layer instead, which lets them
//! see through renames, track bindings and distinguish construction
//! from per-event code. The domain-isolation rules
//! (`cross-domain-shared-state`, `rc-escape`, `effect-drift`) live in
//! [`crate::flow`] on top of the workspace call graph and the effect
//! lattice in [`crate::effects`].
//!
//! `tests/golden_findings.rs` pins the full raw finding set on the real
//! workspace against a committed snapshot.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::items::{self, FileMap, FnItem};
use crate::lex::{self, is_path_sep, Lexed, Tok, TokKind};
use crate::resolve::{self, Bindings, Resolver};
use crate::scrub::{self, Scrubbed};

/// Crates whose `src/` trees are simulation code: nothing inside them may
/// observe wall-clock time, OS threads or unordered iteration, because
/// all of it can reach the event queue and break seed-determinism.
pub const SIM_CRATES: &[&str] = &[
    "trace",
    "rt",
    "rnic",
    "core",
    "race",
    "ford",
    "sherman",
    "workloads",
    "check",
    "fault",
    "serve",
];

/// Files on the simulator's per-event hot path: the executor's ready
/// loop and timer wheel (touched once per poll / timer fire) and the
/// RNIC's per-WR dispatch (QP completion and doorbell paths, touched
/// once per work request). A stray `format!` in any of these taxes every
/// simulated event of every run — see [`hot_path_alloc`]. Unlike
/// [`SIM_CRATES`], this list names individual files: the rest of those
/// crates may allocate freely.
pub const HOT_PATHS: &[&str] = &[
    "crates/rt/src/executor.rs",
    "crates/rt/src/wheel.rs",
    "crates/rnic/src/qp.rs",
    "crates/rnic/src/doorbell.rs",
];

/// The PDES engine files: the one place inside the simulation stack that
/// *implements* OS-thread hosting (worker threads, cross-domain
/// channels, the epoch coordinator), so `os-concurrency` — including its
/// alias-evasion arm — does not apply there. Everything the engine hosts
/// still runs single-threaded per domain and stays under the full rule
/// set; this list is deliberately file-granular (not crate-granular) so
/// the rest of `smart-rt` keeps the ban. Like [`HOT_PATHS`], entries are
/// drift-checked against the workspace by [`layering`].
pub const PDES_ENGINE_FILES: &[&str] = &["crates/rt/src/pdes.rs"];

/// The dependency tiers of the simulation stack, lowest first. A crate
/// may depend on any crate in a tier at or below its own; an upward edge
/// inverts the layering (e.g. the event loop reaching into a workload)
/// and is flagged by [`layering`].
pub const LAYERS: &[(&str, u8)] = &[
    ("trace", 0),
    ("rt", 1),
    ("rnic", 2),
    ("core", 3),
    ("race", 4),
    ("ford", 4),
    ("sherman", 4),
    ("workloads", 4),
    ("check", 5),
    ("fault", 5),
    ("serve", 6),
    ("bench", 7),
];

/// Workspace crates outside the simulation stack (tooling): not part of
/// the tier order, and nothing in the stack may depend on them.
pub const NON_SIM_CRATES: &[&str] = &["lint", "plot"];

/// Every rule id, for pragma validation and counting.
pub const RULES: &[&str] = &[
    "wall-clock",
    "os-concurrency",
    "unordered-iter",
    "unseeded-rng",
    "calibration-drift",
    "bench-index-drift",
    "await-holding-guard",
    "rc-identity",
    "fallible-unhandled",
    "hot-path-alloc",
    "alias-evasion",
    "unordered-iter-binding",
    "layering",
    "panic-in-recovery",
    "cross-domain-shared-state",
    "rc-escape",
    "effect-drift",
];

/// The tier of a workspace crate, if it is in the simulation stack.
pub fn layer(name: &str) -> Option<u8> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|&(_, l)| l)
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the linted root.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (e.g. `wall-clock`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// True when a `lint:allow` pragma covers the site. Suppressed
    /// findings are kept in the raw stream (for the golden snapshot and
    /// `--pragmas` auditing) and filtered before reporting.
    pub suppressed: bool,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A scrubbed, lexed and item-mapped workspace source file.
pub struct SourceFile {
    /// Path relative to the linted root, with `/` separators.
    pub rel: PathBuf,
    pub scrubbed: Scrubbed,
    pub lex: Lexed,
    pub items: FileMap,
}

impl SourceFile {
    /// Scrubs, lexes and item-maps one source.
    pub fn new(rel: PathBuf, src: &str) -> Self {
        let scrubbed = scrub::scrub(src);
        let lex = lex::lex(&scrubbed.text);
        let items = items::parse(&lex.toks);
        SourceFile {
            rel,
            scrubbed,
            lex,
            items,
        }
    }

    /// The root-relative path with `/` separators.
    pub fn rel_str(&self) -> String {
        self.rel.to_string_lossy().replace('\\', "/")
    }

    /// True if this file is non-test simulation code.
    pub fn is_sim_src(&self) -> bool {
        let s = self.rel_str();
        SIM_CRATES
            .iter()
            .any(|c| s.starts_with(&format!("crates/{c}/src/")))
    }

    /// True if this file is the PDES engine itself (see
    /// [`PDES_ENGINE_FILES`]): exempt from the OS-concurrency ban, and
    /// nothing else.
    pub fn is_pdes_engine(&self) -> bool {
        PDES_ENGINE_FILES.contains(&self.rel_str().as_str())
    }

    /// Scrubbed lines paired with their whitespace-condensed form.
    pub(crate) fn condensed_lines(&self) -> impl Iterator<Item = (usize, &str)> + '_ {
        self.lex.condensed_lines()
    }

    /// The condensed projection of a 1-based line ("" past EOF).
    fn condensed_line(&self, line: usize) -> &str {
        line.checked_sub(1)
            .and_then(|i| self.lex.lines.get(i))
            .map(String::as_str)
            .unwrap_or("")
    }
}

/// True if `needle` occurs in `hay` delimited by non-identifier chars.
pub(crate) fn has_ident(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

pub(crate) fn diag(
    file: &SourceFile,
    line: usize,
    rule: &'static str,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    out.push(Diagnostic {
        path: file.rel.clone(),
        line,
        rule,
        message,
        suppressed: file.scrubbed.allowed(rule, line),
    });
}

// ---------------------------------------------------------------------------
// Shared per-line matchers and message builders
//
// Both engines (this one and the legacy line engine) call these, so a
// finding's presence and wording can never drift between them.
// ---------------------------------------------------------------------------

/// What kind of determinism hazard a banned import is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BanKind {
    Time,
    Os,
    Rng,
}

pub(crate) fn wall_clock_hit(l: &str) -> Option<&'static str> {
    ["Instant::now", "std::time::Instant", "SystemTime"]
        .into_iter()
        .find(|pat| l.contains(pat))
}

pub(crate) fn os_concurrency_hit(l: &str) -> Option<&'static str> {
    if l.contains("thread::spawn") || l.contains("std::thread") {
        Some("std::thread")
    } else if l.contains("std::sync::Mutex") {
        Some("std::sync::Mutex")
    } else if l.contains("std::sync::RwLock") {
        Some("std::sync::RwLock")
    } else if l.contains("std::sync::Condvar") || has_ident(l, "Condvar") {
        Some("Condvar")
    } else if l.contains("std::sync::{") && (has_ident(l, "Mutex") || has_ident(l, "RwLock")) {
        Some("std::sync::{Mutex|RwLock}")
    } else {
        None
    }
}

pub(crate) fn unordered_iter_hit(l: &str) -> Option<&'static str> {
    ["HashMap", "HashSet"]
        .into_iter()
        .find(|pat| has_ident(l, pat))
}

pub(crate) fn unseeded_rng_hit(l: &str) -> Option<&'static str> {
    ["thread_rng", "from_entropy", "OsRng", "rand::random"]
        .into_iter()
        .find(|pat| {
            if pat.contains("::") {
                l.contains(pat)
            } else {
                has_ident(l, pat)
            }
        })
}

pub(crate) fn rc_identity_hit(l: &str) -> Option<&'static str> {
    ["Rc::as_ptr", "Rc::ptr_eq"]
        .into_iter()
        .find(|pat| l.contains(pat))
}

pub(crate) fn hot_path_alloc_hit(l: &str) -> Option<&'static str> {
    ["format!(", ".to_string(", "Vec::new()", "String::new()"]
        .into_iter()
        .find(|pat| l.contains(pat))
}

/// Statement-granular scan for `.unwrap()`/`.expect(` on `try_*` verb
/// results: chained calls routinely split across lines
/// (`coro.try_sync()\n.await\n.unwrap()`), so lines accumulate until one
/// ends in `;`, `{` or `}`. Returns `(line, sink, verb)` hits.
pub(crate) fn fallible_sinks<'a>(
    lines: impl Iterator<Item = (usize, &'a str)>,
) -> Vec<(usize, &'static str, &'static str)> {
    let mut found = Vec::new();
    let mut verb: Option<&'static str> = None;
    for (line, l) in lines {
        if verb.is_none() {
            verb = FALLIBLE_VERBS
                .iter()
                .find(|v| has_ident(l, v) && l.contains(&format!("{v}(")))
                .copied();
        }
        if let Some(v) = verb {
            let sink = if l.contains(".unwrap()") {
                Some(".unwrap()")
            } else if l.contains(".expect(") {
                Some(".expect(…)")
            } else {
                None
            };
            if let Some(sink) = sink {
                found.push((line, sink, v));
                verb = None;
            }
        }
        if l.ends_with(';') || l.ends_with('{') || l.ends_with('}') {
            verb = None;
        }
    }
    found
}

pub(crate) mod msg {
    use super::BanKind;

    pub(crate) fn wall_clock(pat: &str) -> String {
        format!("`{pat}` in sim code; only SimTime may drive time")
    }

    pub(crate) fn os_concurrency(pat: &str) -> String {
        format!(
            "`{pat}` in sim code; the executor is single-threaded — use smart_rt::sync primitives"
        )
    }

    pub(crate) fn unordered_iter(pat: &str) -> String {
        format!(
            "`{pat}` in sim code; iteration order is unseeded — use BTreeMap/BTreeSet/Vec \
             or justify with lint:allow(unordered-iter)"
        )
    }

    pub(crate) fn unseeded_rng(pat: &str) -> String {
        format!("`{pat}` draws OS entropy; use the seeded smart_rt::rng::SimRng")
    }

    pub(crate) fn await_holding_guard(name: &str, line: usize) -> String {
        format!(
            "`.await` while guard `{name}` (line {line}) holds its lock; release before \
             suspending or justify with lint:allow(await-holding-guard)"
        )
    }

    pub(crate) fn rc_identity(pat: &str) -> String {
        format!(
            "`{pat}` exposes a heap address, which is not seed-stable; key on a \
             stable id instead or justify with lint:allow(rc-identity)"
        )
    }

    pub(crate) fn fallible_unhandled(sink: &str, verb: &str) -> String {
        format!(
            "`{sink}` on a `{verb}` result panics on a recoverable fault; \
             propagate with `?` or handle with unwrap_or_else"
        )
    }

    pub(crate) fn hot_path_alloc(pat: &str) -> String {
        format!(
            "`{pat}` in a per-event hot-path file; allocate at construction time \
             or justify with lint:allow(hot-path-alloc)"
        )
    }

    pub(crate) fn alias_evasion(full: &str, bound: &str, kind: BanKind) -> String {
        let fix = match kind {
            BanKind::Time => "only SimTime may drive time",
            BanKind::Os => "the executor is single-threaded — use smart_rt::sync primitives",
            BanKind::Rng => "use the seeded smart_rt::rng::SimRng",
        };
        format!("import binds `{full}` as `{bound}`, hiding it from the pattern rules; {fix}")
    }

    pub(crate) fn unordered_iter_binding(name: &str, ty: &str) -> String {
        format!(
            "iterating `{name}`, bound as a {ty} (unseeded order), in sim code; \
             use BTreeMap/BTreeSet or impose a seeded order first"
        )
    }

    pub(crate) fn layering_order(src: &str, sl: u8, dst: &str, dl: u8) -> String {
        format!(
            "`{src}` (tier {sl}) must not depend on `{dst}` (tier {dl}); the tier order is \
             trace < rt < rnic < core < race/ford/sherman/workloads < check/fault < bench"
        )
    }

    pub(crate) fn panic_in_recovery(what: &str, root: &str, via: Option<&str>) -> String {
        match via {
            Some(callee) => format!(
                "`{what}` in `{callee}` on the `{root}` recovery path; \
                 surface the typed fault as Err instead of panicking"
            ),
            None => format!(
                "`{what}` inside recovery fn `{root}`; \
                 surface the typed fault as Err instead of panicking"
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Pattern rules (re-hosted on the lexer's condensed projection)
// ---------------------------------------------------------------------------

/// Rule 1 — `wall-clock`: simulation code must be driven by `SimTime`
/// only; real clocks make runs irreproducible.
pub fn wall_clock(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    for (line, l) in file.condensed_lines() {
        if let Some(pat) = wall_clock_hit(l) {
            diag(file, line, "wall-clock", msg::wall_clock(pat), out);
        }
    }
}

/// Rule 2 — `os-concurrency`: the executor is single-threaded; OS
/// threads and blocking sync primitives mask scheduling bugs. The PDES
/// engine files ([`PDES_ENGINE_FILES`]) are the sanctioned exception —
/// they implement the hosting layer the ban exists to protect.
pub fn os_concurrency(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() || file.is_pdes_engine() {
        return;
    }
    for (line, l) in file.condensed_lines() {
        if let Some(pat) = os_concurrency_hit(l) {
            diag(file, line, "os-concurrency", msg::os_concurrency(pat), out);
        }
    }
}

/// Rule 3 — `unordered-iter`: `HashMap`/`HashSet` iteration order is
/// randomized per process; if it reaches the event queue, two runs with
/// one seed diverge. Sim code must use `BTreeMap`/`BTreeSet`/`Vec`, or
/// carry a pragma arguing the map is never iterated.
pub fn unordered_iter(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    for (line, l) in file.condensed_lines() {
        if let Some(pat) = unordered_iter_hit(l) {
            diag(file, line, "unordered-iter", msg::unordered_iter(pat), out);
        }
    }
}

/// Rule 4 — `unseeded-rng`: all randomness must come from the seeded
/// PRNG in `smart_rt::rng`; entropy-seeded generators break replay.
/// Applies to every workspace source, tests included.
pub fn unseeded_rng(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (line, l) in file.condensed_lines() {
        if let Some(pat) = unseeded_rng_hit(l) {
            diag(file, line, "unseeded-rng", msg::unseeded_rng(pat), out);
        }
    }
}

/// Rule 8 — `rc-identity`: `Rc::as_ptr` / `Rc::ptr_eq` expose heap
/// addresses, which vary across runs even with one seed. Ordering,
/// hashing or keying on them silently breaks replay; uses that only
/// compare or count (never order) carry a pragma with the argument.
pub fn rc_identity(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    for (line, l) in file.condensed_lines() {
        if let Some(pat) = rc_identity_hit(l) {
            diag(file, line, "rc-identity", msg::rc_identity(pat), out);
        }
    }
}

/// The fallible verbs the recovery layer exposes: each returns a
/// `Result` whose `Err` is a typed fault (`FaultError` or an app-level
/// wrapper). Panicking on one throws away the recovery semantics the
/// verb exists to provide.
pub(crate) const FALLIBLE_VERBS: &[&str] = &[
    "try_sync",
    "try_read_sync",
    "try_write_sync",
    "try_cas_sync",
    "try_faa_sync",
    "try_roundtrip",
    "try_get",
];

/// Rule 9 — `fallible-unhandled`: `.unwrap()` / `.expect(…)` on the
/// result of a fallible `try_*` verb in sim code converts a typed,
/// recoverable fault into a panic. Propagate with `?`, match on the
/// error, or degrade deliberately with `unwrap_or_else` (which this
/// rule never matches — a closure is an explicit decision).
pub fn fallible_unhandled(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    for (line, sink, verb) in fallible_sinks(file.condensed_lines()) {
        diag(
            file,
            line,
            "fallible-unhandled",
            msg::fallible_unhandled(sink, verb),
            out,
        );
    }
}

// ---------------------------------------------------------------------------
// Token/scope rules
// ---------------------------------------------------------------------------

/// Rule 7 — `await-holding-guard`: a probed lock guard
/// (`Semaphore::acquire_guard` / `ContendedLock::enter_as`) bound across
/// an `.await` keeps its lock held through a suspension point — the
/// exact window the `smart-check` atomicity sanitizer hunts. Sim code
/// must release the guard before suspending or justify the hold with a
/// pragma. Token-hosted: acquisitions split across lines are tracked,
/// and a `}` ends exactly the scopes opened before the guard was bound.
pub fn await_holding_guard(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    struct LiveGuard {
        name: String,
        depth: i32,
        line: usize,
    }
    let toks = &file.lex.toks;
    let mut depth: i32 = 0;
    let mut guards: Vec<LiveGuard> = Vec::new();
    // Start of the current statement, for `let` lookback; `acquiring`
    // marks a statement whose own `.await` is the acquisition itself.
    let mut stmt_start = 0usize;
    let mut acquiring = false;
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        match &t.kind {
            TokKind::Punct('{') => {
                depth += 1;
                stmt_start = i + 1;
                acquiring = false;
            }
            TokKind::Punct('}') => {
                depth -= 1;
                // Scope exit drops whatever was bound inside it.
                guards.retain(|g| g.depth <= depth);
                stmt_start = i + 1;
                acquiring = false;
            }
            TokKind::Punct(';') => {
                stmt_start = i + 1;
                acquiring = false;
            }
            TokKind::Ident(id)
                if id == "drop" && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                if let Some(name) = toks.get(i + 2).and_then(|n| n.ident()) {
                    if toks.get(i + 3).is_some_and(|n| n.is_punct(')')) {
                        guards.retain(|g| g.name != name);
                    }
                }
            }
            TokKind::Ident(id)
                if id == "release"
                    && i >= 2
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                if let Some(name) = toks[i - 2].ident() {
                    guards.retain(|g| g.name != name);
                }
            }
            TokKind::Ident(id)
                if (id == "acquire_guard" || id == "enter_as")
                    && i >= 1
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                if let Some(name) = stmt_let_name(toks, stmt_start) {
                    guards.push(LiveGuard {
                        name,
                        depth,
                        line: t.line,
                    });
                }
                acquiring = true;
            }
            TokKind::Ident(id)
                if id == "await" && i >= 1 && toks[i - 1].is_punct('.') && !acquiring =>
            {
                if let Some(g) = guards.last() {
                    if flagged.insert(t.line) {
                        diag(
                            file,
                            t.line,
                            "await-holding-guard",
                            msg::await_holding_guard(&g.name, g.line),
                            out,
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

/// The name bound by a `let` statement starting at `start`, if the
/// pattern is a bare name (destructured temporaries drop at statement
/// end and are not tracked).
fn stmt_let_name(toks: &[Tok], start: usize) -> Option<String> {
    let mut i = start;
    while toks.get(i).is_some_and(|t| t.is_punct('#'))
        && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        i = items::matching(toks, i + 1, '[', ']') + 1;
    }
    if !toks.get(i)?.is_ident("let") {
        return None;
    }
    i += 1;
    if toks.get(i).is_some_and(|t| t.is_ident("mut")) {
        i += 1;
    }
    let name = toks.get(i)?.ident()?;
    if name == "_" {
        return None;
    }
    let nxt = toks.get(i + 1)?;
    if nxt.is_punct('=') || (nxt.is_punct(':') && !is_path_sep(toks, i + 1)) {
        Some(name.to_string())
    } else {
        None
    }
}

/// Rule 10 — `hot-path-alloc`: no `format!` / `.to_string()` /
/// `Vec::new()` / `String::new()` in the files listed in [`HOT_PATHS`].
/// These run once per simulated event (executor poll loop, timer wheel,
/// rnic per-WR dispatch), where a hidden allocation or formatting pass
/// is a constant tax on every experiment. Constructor bodies (fns
/// returning `Self`/the impl type, or named `default`) are exempt: their
/// allocations are setup cost, which is exactly what the pragmas this
/// rule used to demand were arguing.
pub fn hot_path_alloc(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let rel = file.rel_str();
    if !HOT_PATHS.contains(&rel.as_str()) {
        return;
    }
    let ctor_ranges: Vec<(usize, usize)> = file
        .items
        .fns
        .iter()
        .filter(|f| f.is_constructor())
        .filter_map(|f| {
            f.body
                .map(|(o, c)| (file.lex.toks[o].line, file.lex.toks[c].line))
        })
        .collect();
    for (line, l) in file.condensed_lines() {
        if ctor_ranges.iter().any(|&(a, b)| a <= line && line <= b) {
            continue;
        }
        if let Some(pat) = hot_path_alloc_hit(l) {
            diag(file, line, "hot-path-alloc", msg::hot_path_alloc(pat), out);
        }
    }
}

/// Rule 11 — `alias-evasion`: a banned wall-clock / OS-thread / entropy
/// source imported through a rename or a grouped `use` never shows the
/// substring the pattern rules match on (`use std::time::{Instant as
/// Clock, …}` contains neither `std::time::Instant` nor `Instant::now`).
/// This rule resolves every `use` leaf to its full path and flags banned
/// imports the line patterns cannot see; imports the line rules already
/// catch stay theirs, so no site is reported twice.
pub fn alias_evasion(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let sim = file.is_sim_src();
    for u in &file.items.uses {
        if u.glob {
            continue;
        }
        let Some((full, kind)) = banned_import(&u.path, sim) else {
            continue;
        };
        if kind == BanKind::Os && file.is_pdes_engine() {
            // The engine's OS-thread exemption covers aliased imports too.
            continue;
        }
        let l = file.condensed_line(u.line);
        let caught_by_line_rules = match kind {
            BanKind::Time => wall_clock_hit(l).is_some(),
            BanKind::Os => os_concurrency_hit(l).is_some(),
            BanKind::Rng => unseeded_rng_hit(l).is_some(),
        };
        if caught_by_line_rules {
            continue;
        }
        let bound = u.local_name().unwrap_or("_").to_string();
        diag(
            file,
            u.line,
            "alias-evasion",
            msg::alias_evasion(&full, &bound, kind),
            out,
        );
    }
}

/// Classifies an imported path as banned, mirroring the scopes of the
/// line rules: entropy sources are banned everywhere (like
/// `unseeded-rng`); clocks and OS concurrency only in sim code.
fn banned_import(path: &[String], sim: bool) -> Option<(String, BanKind)> {
    let segs: Vec<&str> = path.iter().map(String::as_str).collect();
    let last = *segs.last()?;
    if last == "thread_rng"
        || last == "OsRng"
        || (segs.first() == Some(&"rand") && last == "random")
    {
        return Some((path.join("::"), BanKind::Rng));
    }
    if !sim {
        return None;
    }
    if segs.len() >= 2
        && segs[0] == "std"
        && segs[1] == "time"
        && (last == "Instant" || last == "SystemTime")
    {
        return Some((path.join("::"), BanKind::Time));
    }
    if segs.len() >= 2 && segs[0] == "std" && segs[1] == "thread" {
        return Some((path.join("::"), BanKind::Os));
    }
    if segs.len() == 3
        && segs[0] == "std"
        && segs[1] == "sync"
        && ["Mutex", "RwLock", "Condvar"].contains(&last)
    {
        return Some((path.join("::"), BanKind::Os));
    }
    None
}

/// Methods whose call on a map/set observes its iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Rule 12 — `unordered-iter-binding`: iteration over a *binding* whose
/// syntactic type is `HashMap`/`HashSet` — including through a `use …
/// as` rename that defeats the `unordered-iter` substring match. The
/// declaration itself is left to `unordered-iter` when it can see it;
/// this rule only reports maps whose declaration the line engine misses,
/// at the point where their unseeded order actually escapes: the
/// iteration.
pub fn unordered_iter_binding(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    let toks = &file.lex.toks;
    let res = Resolver::new(&file.items);
    let mut binds = Bindings::default();
    binds.enter();
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            binds.enter();
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            binds.exit();
            i += 1;
            continue;
        }
        if t.is_ident("let") {
            if let Some((b, next)) = resolve::let_binding_at(toks, i, &res) {
                binds.declare(b);
                i = next;
                continue;
            }
        }
        if let Some(m) = t.ident() {
            // `recv.iter()` / `self.field.keys()` …
            if ITER_METHODS.contains(&m)
                && i >= 2
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                check_receiver(file, &res, &binds, toks, i - 2, t.line, &mut flagged, out);
            }
            // `for x in &recv {` — direct iteration of the collection.
            if m == "in" {
                let mut j = i + 1;
                while toks
                    .get(j)
                    .is_some_and(|n| n.is_punct('&') || n.is_ident("mut"))
                {
                    j += 1;
                }
                let ridx = if toks.get(j).is_some_and(|n| n.is_ident("self"))
                    && toks.get(j + 1).is_some_and(|n| n.is_punct('.'))
                {
                    j + 2
                } else {
                    j
                };
                if toks.get(ridx).and_then(|n| n.ident()).is_some()
                    && toks.get(ridx + 1).is_some_and(|n| n.is_punct('{'))
                {
                    check_receiver(file, &res, &binds, toks, ridx, t.line, &mut flagged, out);
                }
            }
        }
        i += 1;
    }
}

/// Resolves the receiver ident at `ridx` (a local binding, or a `self.`
/// field) and reports it if its type names a `HashMap`/`HashSet` that
/// the `unordered-iter` line rule could not see at its declaration.
#[allow(clippy::too_many_arguments)]
fn check_receiver(
    file: &SourceFile,
    res: &Resolver,
    binds: &Bindings,
    toks: &[Tok],
    ridx: usize,
    at_line: usize,
    flagged: &mut BTreeSet<usize>,
    out: &mut Vec<Diagnostic>,
) {
    let Some(name) = toks.get(ridx).and_then(|t| t.ident()) else {
        return;
    };
    let via_self = ridx >= 2
        && toks[ridx - 1].is_punct('.')
        && toks[ridx - 2].is_ident("self")
        && (ridx < 3 || !toks[ridx - 3].is_punct('.'));
    let (decl_line, ty) = if via_self {
        let Some(f) = file.items.fields.iter().find(|f| f.name == name) else {
            return;
        };
        (f.line, expand_ty(res, &f.ty))
    } else if ridx >= 1 && toks[ridx - 1].is_punct('.') {
        // Chained expression receiver (`x().iter()`): unknown, skip.
        return;
    } else {
        let Some(b) = binds.lookup(name) else {
            return;
        };
        (b.line, b.ty.clone())
    };
    let Some(which) = ty.iter().find(|s| *s == "HashMap" || *s == "HashSet") else {
        return;
    };
    // If the declaration line names the type openly, `unordered-iter`
    // already owns that finding.
    if unordered_iter_hit(file.condensed_line(decl_line)).is_some() {
        return;
    }
    if flagged.insert(at_line) {
        diag(
            file,
            at_line,
            "unordered-iter-binding",
            msg::unordered_iter_binding(name, which),
            out,
        );
    }
}

/// Alias-expands the head of a written type's ident list.
fn expand_ty(res: &Resolver, ty: &[String]) -> Vec<String> {
    if let Some(full) = ty.first().and_then(|f| res.lookup(f)) {
        let mut v = full.to_vec();
        v.extend(ty.iter().skip(1).cloned());
        v
    } else {
        ty.to_vec()
    }
}

/// Rule 13 — `panic-in-recovery`: the `try_*` verbs exist so a fault
/// surfaces as a typed `Err` the caller can recover from; an `unwrap`,
/// `expect`, `panic!` or slice-indexing inside a recovery fn's body (or
/// in a core helper it directly calls) turns an injected fault into a
/// process abort and silently voids the recovery contract. Scans fns
/// named `try_*` defined in `crates/core/src`, one call level deep.
pub fn panic_in_recovery(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let core: Vec<&SourceFile> = files
        .iter()
        .filter(|f| f.rel_str().starts_with("crates/core/src/"))
        .collect();
    // Every fn defined in core, by name, for one-level callee lookup.
    let mut defs: BTreeMap<&str, Vec<(usize, &FnItem)>> = BTreeMap::new();
    for (fi, f) in core.iter().enumerate() {
        for item in &f.items.fns {
            defs.entry(item.name.as_str()).or_default().push((fi, item));
        }
    }
    let mut seen: BTreeSet<(String, usize, &'static str)> = BTreeSet::new();
    for f in &core {
        for item in &f.items.fns {
            if !item.name.starts_with("try_") {
                continue;
            }
            let Some((open, close)) = item.body else {
                continue;
            };
            report_panic_sites(f, open, close, &item.name, None, &mut seen, out);
            for callee in direct_callees(&f.lex.toks, open, close, &defs, &item.name) {
                let (cfi, citem) = defs[callee.as_str()][0];
                if let Some((o, c)) = citem.body {
                    report_panic_sites(
                        core[cfi],
                        o,
                        c,
                        &item.name,
                        Some(&citem.name),
                        &mut seen,
                        out,
                    );
                }
            }
        }
    }
}

/// Core fns called directly (bare or as methods) from the body span.
/// Path-qualified calls are kept only for `self`/`Self` qualifiers, so
/// `Vec::new()` never drags an unrelated `new` into the scan; ambiguous
/// names (several core fns sharing one name) are skipped.
fn direct_callees(
    toks: &[Tok],
    open: usize,
    close: usize,
    defs: &BTreeMap<&str, Vec<(usize, &FnItem)>>,
    root_name: &str,
) -> Vec<String> {
    let mut found = BTreeSet::new();
    for i in open + 1..close {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if name.starts_with("try_") || name == root_name {
            continue;
        }
        if i >= 2 && is_path_sep(toks, i - 2) {
            let qualifier = i.checked_sub(3).and_then(|q| toks[q].ident());
            if !matches!(qualifier, Some("self") | Some("Self")) {
                continue;
            }
        }
        if defs.get(name).is_some_and(|v| v.len() == 1) {
            found.insert(name.to_string());
        }
    }
    found.into_iter().collect()
}

/// Idents that can precede `[` without the bracket being an index.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "break", "continue", "as", "mut", "ref", "move",
    "loop", "while", "for", "where", "unsafe", "dyn", "impl", "fn", "use", "mod", "static",
    "const", "enum", "struct", "trait", "type", "pub", "crate", "super", "async", "await",
];

fn report_panic_sites(
    f: &SourceFile,
    open: usize,
    close: usize,
    root: &str,
    via: Option<&str>,
    seen: &mut BTreeSet<(String, usize, &'static str)>,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &f.lex.toks;
    for i in open + 1..close {
        let Some((what, line)) = panic_site(toks, i) else {
            continue;
        };
        if seen.insert((f.rel_str(), line, what)) {
            diag(
                f,
                line,
                "panic-in-recovery",
                msg::panic_in_recovery(what, root, via),
                out,
            );
        }
    }
}

/// A panic-capable token at `i`: `.unwrap()`, `.expect(`, `panic!` or a
/// slice/array index (a `[` whose left side is a value expression).
fn panic_site(toks: &[Tok], i: usize) -> Option<(&'static str, usize)> {
    let t = &toks[i];
    match &t.kind {
        TokKind::Ident(s)
            if (s == "unwrap" || s == "expect")
                && i >= 1
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
        {
            let what = if s == "unwrap" {
                ".unwrap()"
            } else {
                ".expect(…)"
            };
            Some((what, t.line))
        }
        TokKind::Ident(s) if s == "panic" && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) => {
            Some(("panic!", t.line))
        }
        TokKind::Punct('[') if i >= 1 => match &toks[i - 1].kind {
            TokKind::Punct(')') | TokKind::Punct(']') => Some(("indexing", t.line)),
            TokKind::Ident(s) if !NON_INDEX_KEYWORDS.contains(&s.as_str()) => {
                Some(("indexing", t.line))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Rule 14 — `layering`: the simulation stack has one dependency
/// direction (see [`LAYERS`]); an upward edge — in a `use smart_*`
/// import or a `Cargo.toml` `[dependencies]` entry — lets a lower layer
/// reach into policy above it. Also drift-checks the lint's own tables:
/// every crate under `crates/` must be classified, and (in the real
/// workspace) every [`SIM_CRATES`] entry and [`HOT_PATHS`] file must
/// exist on disk.
pub fn layering(root: &Path, files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    // `use smart_*` edges from crate sources.
    for f in files {
        let Some(c) = resolve::crate_of(&f.rel) else {
            continue;
        };
        if !f.rel_str().starts_with(&format!("crates/{c}/src/")) {
            continue;
        }
        let Some(sl) = layer(&c) else { continue };
        for u in &f.items.uses {
            let Some(head) = u.path.first() else { continue };
            let Some(dep) = resolve::dep_crate(head) else {
                continue;
            };
            if dep == c {
                continue;
            }
            match layer(&dep) {
                Some(dl) if sl < dl => diag(
                    f,
                    u.line,
                    "layering",
                    msg::layering_order(&c, sl, &dep, dl),
                    out,
                ),
                Some(_) => {}
                None => diag(
                    f,
                    u.line,
                    "layering",
                    format!("`{c}` imports `{head}`, which is not in the lint layer table"),
                    out,
                ),
            }
        }
    }

    // Cargo.toml `[dependencies]` edges, plus the unlisted-crate check.
    let mut names: Vec<String> = fs::read_dir(root.join("crates"))
        .map(|rd| {
            rd.flatten()
                .filter(|e| e.path().is_dir())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    for name in &names {
        if layer(name).is_none() && !NON_SIM_CRATES.contains(&name.as_str()) {
            out.push(Diagnostic {
                path: PathBuf::from(format!("crates/{name}")),
                line: 1,
                rule: "layering",
                message: format!(
                    "crate `{name}` is not in the lint layer table; add it to LAYERS \
                     (sim stack) or NON_SIM_CRATES (tooling)"
                ),
                suppressed: false,
            });
            continue;
        }
        let Some(sl) = layer(name) else { continue };
        let toml_rel = format!("crates/{name}/Cargo.toml");
        let Ok(toml) = fs::read_to_string(root.join(&toml_rel)) else {
            continue;
        };
        for (lineno, dep) in parse_toml_deps(&toml) {
            let Some(depc) = resolve::dep_crate(&dep) else {
                continue;
            };
            match layer(&depc) {
                Some(dl) if sl < dl => out.push(Diagnostic {
                    path: PathBuf::from(&toml_rel),
                    line: lineno,
                    rule: "layering",
                    message: msg::layering_order(name, sl, &depc, dl),
                    suppressed: false,
                }),
                Some(_) => {}
                None => out.push(Diagnostic {
                    path: PathBuf::from(&toml_rel),
                    line: lineno,
                    rule: "layering",
                    message: format!(
                        "`{name}` depends on `{dep}`, which is not in the lint layer table"
                    ),
                    suppressed: false,
                }),
            }
        }
    }

    // Drift checks, real-workspace mode only (fixtures carry no root
    // workspace manifest, so their partial crate sets stay legal).
    let root_toml = fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
    if root_toml.contains("[workspace]") {
        for c in SIM_CRATES {
            if !root.join("crates").join(c).join("Cargo.toml").is_file() {
                out.push(Diagnostic {
                    path: PathBuf::from("Cargo.toml"),
                    line: 1,
                    rule: "layering",
                    message: format!(
                        "SIM_CRATES names `{c}` but crates/{c}/Cargo.toml does not exist — \
                         the lint's crate list drifted from the workspace"
                    ),
                    suppressed: false,
                });
            }
        }
        for h in HOT_PATHS {
            if !root.join(h).is_file() {
                out.push(Diagnostic {
                    path: PathBuf::from("Cargo.toml"),
                    line: 1,
                    rule: "layering",
                    message: format!(
                        "HOT_PATHS names `{h}` but it does not exist — \
                         the lint's hot-path list drifted from the workspace"
                    ),
                    suppressed: false,
                });
            }
        }
        for p in PDES_ENGINE_FILES {
            if !root.join(p).is_file() {
                out.push(Diagnostic {
                    path: PathBuf::from("Cargo.toml"),
                    line: 1,
                    rule: "layering",
                    message: format!(
                        "PDES_ENGINE_FILES names `{p}` but it does not exist — \
                         the OS-concurrency exemption would silently cover nothing"
                    ),
                    suppressed: false,
                });
            }
        }
    }
}

/// `(line, dependency-name)` entries of a manifest's `[dependencies]`
/// section (dev- and build-dependencies are not layering edges).
fn parse_toml_deps(toml: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (i, line) in toml.lines().enumerate() {
        let t = line.trim();
        if t.starts_with('[') {
            in_deps = t == "[dependencies]";
            continue;
        }
        if !in_deps || t.is_empty() || t.starts_with('#') {
            continue;
        }
        if let Some((key, _)) = t.split_once('=') {
            // A dep key may be dotted (`smart-rt.workspace = true`) or
            // quoted; the crate name is the first bare segment.
            let name = key.trim().trim_matches('"');
            let name = name.split('.').next().unwrap_or(name).trim();
            if !name.is_empty() {
                out.push((i + 1, name.to_string()));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// calibration-drift
// ---------------------------------------------------------------------------

/// A numeric config field parsed out of a scrubbed Rust source.
fn field_value(file: &SourceFile, field: &str) -> Option<(usize, f64)> {
    let marker = format!("{field}:");
    for (line, l) in file.condensed_lines() {
        let Some(pos) = l.find(&marker) else { continue };
        let rest = &l[pos + marker.len()..];
        // Either a literal (`uar_medium:12,`) or a duration constructor
        // (`base_service:Duration::from_nanos(9),`).
        let num = if let Some(inner) = rest.strip_prefix("Duration::from_nanos(") {
            parse_number(inner)
        } else if let Some(inner) = rest.strip_prefix("Duration::from_micros(") {
            parse_number(inner).map(|v| v * 1_000.0)
        } else {
            parse_number(rest)
        };
        if let Some(v) = num {
            return Some((line, v));
        }
    }
    None
}

/// Parses a leading `f64` allowing `_` separators; `None` if the text
/// does not start with a digit.
fn parse_number(s: &str) -> Option<f64> {
    let cleaned: String = s
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_' || *c == '.')
        .filter(|c| *c != '_')
        .collect();
    if cleaned.is_empty() || !cleaned.starts_with(|c: char| c.is_ascii_digit()) {
        return None;
    }
    cleaned.trim_end_matches('.').parse().ok()
}

/// Finds the first number in `s` at or after `from`.
fn first_number(s: &str) -> Option<f64> {
    let start = s.find(|c: char| c.is_ascii_digit())?;
    parse_number(&s[start..])
}

/// Finds the number immediately preceding `marker` on the same line.
fn number_before(line: &str, marker: &str) -> Option<f64> {
    let pos = line.find(marker)?;
    let head = line[..pos].trim_end();
    let tail_start = head
        .rfind(|c: char| !(c.is_ascii_digit() || c == '_' || c == '.'))
        .map(|p| p + 1)
        .unwrap_or(0);
    parse_number(&head[tail_start..])
}

/// The calibration constants DESIGN.md §4 promises.
#[derive(Debug, PartialEq)]
pub struct DesignCalibration {
    /// Hardware IOPS ceiling in MOPS ("110 MOPS ceiling").
    pub mops_ceiling: f64,
    /// Doorbells per device context ("Doorbells: 16 per context").
    pub doorbells: f64,
    /// WQE cache capacity ("1024-entry capacity-pressure model").
    pub wqe_entries: f64,
    /// Backoff unit in cycles ("t0 = 4096 cycles").
    pub t0_cycles: f64,
    /// Fabric roundtrip budget in µs ("2 µs roundtrip budget").
    pub roundtrip_us: f64,
}

/// Extracts the §4 constants from DESIGN.md prose. Returns Err with the
/// missing anchor phrase when the doc was reworded past recognition —
/// the lint then fails, which is exactly the drift signal we want.
pub fn parse_design_calibration(design: &str) -> Result<DesignCalibration, String> {
    let mut mops = None;
    let mut doorbells = None;
    let mut wqe = None;
    let mut t0 = None;
    let mut rt = None;
    for line in design.lines() {
        if mops.is_none() && line.contains("MOPS ceiling") {
            mops = number_before(line, "MOPS ceiling");
        }
        if doorbells.is_none() {
            if let Some(pos) = line.find("Doorbells:") {
                doorbells = first_number(&line[pos..]);
            }
        }
        if wqe.is_none() && line.contains("-entry") && line.contains("WQE cache") {
            wqe = number_before(line, "-entry");
        }
        if t0.is_none() {
            if let Some(pos) = line.find("t0 = ") {
                t0 = first_number(&line[pos + 5..]);
            }
        }
        if rt.is_none() && line.contains("roundtrip budget") {
            rt = number_before(line, "µs roundtrip budget");
        }
    }
    Ok(DesignCalibration {
        mops_ceiling: mops.ok_or("§4 'NNN MOPS ceiling'")?,
        doorbells: doorbells.ok_or("§4 'Doorbells: NN per context'")?,
        wqe_entries: wqe.ok_or("§4 'NNNN-entry … WQE cache'")?,
        t0_cycles: t0.ok_or("§4 't0 = NNNN cycles'")?,
        roundtrip_us: rt.ok_or("§4 'N µs roundtrip budget'")?,
    })
}

/// Rule 5 — `calibration-drift`: DESIGN.md §4 constants must match the
/// defaults in `smart_rnic::config` (and `t0` in `smart::config`).
///
/// `design` is the raw DESIGN.md text; `rnic_cfg`/`core_cfg` are the
/// scrubbed config sources. Ceiling tolerance is 2.5 % (the doc rounds
/// 111.1 down to the paper's 110); the roundtrip budget tolerance is
/// 25 % because the doc states an approximate budget, not a parameter.
pub fn calibration_drift(
    design_path: &Path,
    design: &str,
    rnic_cfg: &SourceFile,
    core_cfg: &SourceFile,
    out: &mut Vec<Diagnostic>,
) {
    let cal = match parse_design_calibration(design) {
        Ok(c) => c,
        Err(anchor) => {
            out.push(Diagnostic {
                path: design_path.to_path_buf(),
                line: 1,
                rule: "calibration-drift",
                message: format!("could not find {anchor} in DESIGN.md — doc and lint drifted"),
                suppressed: false,
            });
            return;
        }
    };
    fn check(
        file: &SourceFile,
        field: &str,
        expect: f64,
        tol: f64,
        what: &str,
        out: &mut Vec<Diagnostic>,
    ) {
        match field_value(file, field) {
            Some((line, got)) if (got - expect).abs() > tol => diag(
                file,
                line,
                "calibration-drift",
                format!("{what}: config has {got}, DESIGN.md §4 says {expect}"),
                out,
            ),
            Some(_) => {}
            None => out.push(Diagnostic {
                path: file.rel.clone(),
                line: 1,
                rule: "calibration-drift",
                message: format!(
                    "could not parse default `{field}` out of {}",
                    file.rel.display()
                ),
                suppressed: false,
            }),
        }
    }
    // base_service ns → MOPS ceiling.
    match field_value(rnic_cfg, "base_service") {
        Some((line, ns)) if ns > 0.0 => {
            let mops = 1_000.0 / ns;
            if (mops - cal.mops_ceiling).abs() > cal.mops_ceiling * 0.025 {
                diag(
                    rnic_cfg,
                    line,
                    "calibration-drift",
                    format!(
                        "IOPS ceiling: base_service {ns} ns ⇒ {mops:.1} MOPS, DESIGN.md §4 says {} MOPS",
                        cal.mops_ceiling
                    ),
                    out,
                );
            }
        }
        _ => out.push(Diagnostic {
            path: rnic_cfg.rel.clone(),
            line: 1,
            rule: "calibration-drift",
            message: "could not parse default `base_service`".into(),
            suppressed: false,
        }),
    }
    // Doorbell count is the sum of the low-latency and medium pools.
    match (
        field_value(rnic_cfg, "uar_low_latency"),
        field_value(rnic_cfg, "uar_medium"),
    ) {
        (Some((line, low)), Some((_, med))) => {
            if low + med != cal.doorbells {
                diag(
                    rnic_cfg,
                    line,
                    "calibration-drift",
                    format!(
                        "doorbells per context: config has {} + {} = {}, DESIGN.md §4 says {}",
                        low,
                        med,
                        low + med,
                        cal.doorbells
                    ),
                    out,
                );
            }
        }
        _ => out.push(Diagnostic {
            path: rnic_cfg.rel.clone(),
            line: 1,
            rule: "calibration-drift",
            message: "could not parse default `uar_low_latency`/`uar_medium`".into(),
            suppressed: false,
        }),
    }
    check(
        rnic_cfg,
        "wqe_cache_entries",
        cal.wqe_entries,
        0.0,
        "WQE cache entries",
        out,
    );
    check(
        core_cfg,
        "t0_cycles",
        cal.t0_cycles,
        0.0,
        "backoff unit t0",
        out,
    );
    // one_way_latency ns ×2 vs the roundtrip budget.
    match field_value(rnic_cfg, "one_way_latency")
        .or_else(|| field_value(core_cfg, "one_way_latency"))
    {
        Some((line, _)) => {
            // The field lives in FabricConfig inside the rnic config file.
            let (line, ns) = field_value(rnic_cfg, "one_way_latency").unwrap_or((line, 0.0));
            let rt_us = 2.0 * ns / 1_000.0;
            if (rt_us - cal.roundtrip_us).abs() > cal.roundtrip_us * 0.25 {
                diag(
                    rnic_cfg,
                    line,
                    "calibration-drift",
                    format!(
                        "fabric roundtrip: 2 × one_way_latency = {rt_us:.2} µs, DESIGN.md §4 budgets {} µs (±25 %)",
                        cal.roundtrip_us
                    ),
                    out,
                );
            }
        }
        None => out.push(Diagnostic {
            path: rnic_cfg.rel.clone(),
            line: 1,
            rule: "calibration-drift",
            message: "could not parse default `one_way_latency`".into(),
            suppressed: false,
        }),
    }
}

/// Rule 6 — `bench-index-drift`: every bench target named in DESIGN.md
/// §3's experiment index must exist under `crates/bench/benches/`.
pub fn bench_index_drift(root: &Path, design_path: &Path, design: &str, out: &mut Vec<Diagnostic>) {
    for (i, line) in design.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("bench/benches/") {
            let tail = &rest[pos..];
            let Some(end) = tail.find(".rs") else { break };
            let rel = &tail[..end + 3];
            let on_disk = root.join("crates").join(rel);
            if !on_disk.is_file() {
                out.push(Diagnostic {
                    path: design_path.to_path_buf(),
                    line: i + 1,
                    rule: "bench-index-drift",
                    message: format!(
                        "experiment index names `{rel}` but crates/{rel} does not exist"
                    ),
                    suppressed: false,
                });
            }
            rest = &tail[end + 3..];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_file(src: &str) -> SourceFile {
        SourceFile::new(PathBuf::from("crates/rt/src/fake.rs"), src)
    }

    fn core_file(src: &str) -> SourceFile {
        SourceFile::new(PathBuf::from("crates/core/src/fake.rs"), src)
    }

    /// Assembles pragma text at runtime so this file contributes nothing
    /// to the CI grep gate counting suppression lines in `crates/*/src`.
    fn allow(rule: &str) -> String {
        format!("lint:{}({rule})", "allow")
    }

    /// Drops pragma-suppressed findings, as `run_lint` does before
    /// reporting.
    fn visible(out: &[Diagnostic]) -> Vec<&Diagnostic> {
        out.iter().filter(|d| !d.suppressed).collect()
    }

    #[test]
    fn ident_matching_respects_boundaries() {
        assert!(!has_ident("useHashMap;", "HashMap"));
        assert!(has_ident("x: HashMap<u64,u32>", "HashMap"));
        assert!(!has_ident("MyHashMapLike", "HashMap"));
    }

    #[test]
    fn wall_clock_flags_and_pragma_suppresses() {
        let mut out = Vec::new();
        wall_clock(&sim_file("let t = Instant::now();"), &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        wall_clock(
            &sim_file(&format!(
                "let t = Instant::now(); // {}",
                allow("wall-clock")
            )),
            &mut out,
        );
        assert!(visible(&out).is_empty());
        assert!(out.iter().all(|d| d.suppressed), "{out:#?}");
    }

    #[test]
    fn non_sim_crates_are_exempt_from_sim_rules() {
        let file = SourceFile::new(
            PathBuf::from("crates/bench/benches/micro.rs"),
            "let t = Instant::now();",
        );
        let mut out = Vec::new();
        wall_clock(&file, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn await_holding_guard_flags_only_held_awaits() {
        let src = "\
async fn f(sem: &Semaphore) {
    let g = sem.acquire_guard(1, &h, actor, \"slot\").await;
    other_work().await;
    g.release();
    late_work().await;
}
";
        let mut out = Vec::new();
        await_holding_guard(&sim_file(src), &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("guard `g`"));
    }

    #[test]
    fn await_holding_guard_scope_exit_ends_the_hold() {
        let src = "\
async fn f(lock: &ContendedLock) {
    {
        let section = lock.enter_as(hold, actor, \"qp_lock\").await;
        drop(section);
    }
    fine().await;
}
";
        let mut out = Vec::new();
        await_holding_guard(&sim_file(src), &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn await_holding_guard_tracks_multiline_acquisitions() {
        // The line engine lost track of a `let` split from its
        // `.acquire_guard` call; the token engine must not.
        let src = "\
async fn f(sem: &Semaphore) {
    let g = sem
        .acquire_guard(1, &h, actor, \"slot\")
        .await;
    other_work().await;
    g.release();
}
";
        let mut out = Vec::new();
        await_holding_guard(&sim_file(src), &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].line, 5);
    }

    #[test]
    fn await_holding_guard_pragma_suppresses() {
        let src = format!(
            "\
async fn f(sem: &Semaphore) {{
    let g = sem.acquire_guard(1, &h, actor, \"slot\").await;
    // intentional: measured hold. {}
    other_work().await;
    g.release();
}}
",
            allow("await-holding-guard")
        );
        let mut out = Vec::new();
        await_holding_guard(&sim_file(&src), &mut out);
        assert!(visible(&out).is_empty(), "{out:#?}");
    }

    #[test]
    fn rc_identity_flags_and_pragma_suppresses() {
        let mut out = Vec::new();
        rc_identity(
            &sim_file("v.sort_by_key(|r| Rc::as_ptr(r) as usize);"),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("Rc::as_ptr"));
        out.clear();
        rc_identity(
            &sim_file(&format!(
                "// equality only. {}\nif Rc::ptr_eq(&a, &b) {{}}",
                allow("rc-identity")
            )),
            &mut out,
        );
        assert!(visible(&out).is_empty());
    }

    #[test]
    fn fallible_unhandled_flags_same_line_and_chained() {
        let mut out = Vec::new();
        fallible_unhandled(
            &sim_file("let cqes = coro.try_sync().await.unwrap();"),
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("try_sync"));

        out.clear();
        let chained = "\
let v = table
    .try_get(&coro, key)
    .await
    .expect(\"lookup\");
";
        fallible_unhandled(&sim_file(chained), &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].line, 4);
        assert!(out[0].message.contains("try_get"));
    }

    #[test]
    fn fallible_unhandled_spares_handled_results() {
        let mut out = Vec::new();
        let src = format!(
            "\
let cqes = coro.try_sync().await?;
let v = coro.try_read_sync(addr, 8).await.unwrap_or_else(|e| panic!(\"{{e}}\"));
let w = unrelated.unwrap();
coro.try_cas_sync(a, 0, 1).await.unwrap(); // planted seed. {}
",
            allow("fallible-unhandled")
        );
        fallible_unhandled(&sim_file(&src), &mut out);
        assert!(visible(&out).is_empty(), "{out:#?}");
    }

    #[test]
    fn hot_path_alloc_fires_only_in_hot_files() {
        let hot = SourceFile::new(
            PathBuf::from("crates/rt/src/executor.rs"),
            "fn poll(&mut self) { let label = format!(\"task {id}\"); }",
        );
        let mut out = Vec::new();
        hot_path_alloc(&hot, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("format!("));

        // The same line in a non-hot sim file is fine (other rules own
        // determinism; this one only owns the per-event paths).
        let warm = SourceFile::new(
            PathBuf::from("crates/rt/src/metrics.rs"),
            "fn poll(&mut self) { let label = format!(\"task {id}\"); }",
        );
        out.clear();
        hot_path_alloc(&warm, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn hot_path_alloc_constructors_and_tests_are_exempt() {
        // No pragma needed: `new` returns Self, so its allocations are
        // construction-time by definition.
        let src = "\
impl Slab {
    fn new() -> Self {
        let slab = Vec::new();
        Self { slab }
    }
    fn per_event(&mut self) {
        let scratch = Vec::new();
        self.use_it(scratch);
    }
}
#[cfg(test)]
mod tests {
    fn t() { let v = Vec::new(); }
}
";
        let hot = SourceFile::new(PathBuf::from("crates/rnic/src/qp.rs"), src);
        let mut out = Vec::new();
        hot_path_alloc(&hot, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].line, 7, "only the per-event alloc is flagged");
    }

    #[test]
    fn alias_evasion_sees_through_groups_and_renames() {
        let src = "\
use std::time::{Instant as Clock, Duration};
use std::sync::{Mutex as Lock};
use rand::rngs::OsRng as Entropy;

pub fn stamp() -> Clock { Clock::now() }
";
        let mut out = Vec::new();
        alias_evasion(&sim_file(src), &mut out);
        let lines: Vec<usize> = out.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![1, 2, 3], "{out:#?}");
        assert!(out[0].message.contains("std::time::Instant"));
        assert!(out[1].message.contains("std::sync::Mutex"));
        assert!(out[2].message.contains("OsRng"));
    }

    #[test]
    fn alias_evasion_defers_to_the_line_rules() {
        // A plain banned import is the line rules' finding, not ours.
        let mut out = Vec::new();
        alias_evasion(&sim_file("use std::time::Instant;\n"), &mut out);
        assert!(out.is_empty(), "{out:#?}");
        // Benign imports don't fire at all.
        out.clear();
        alias_evasion(
            &sim_file("use std::time::Duration;\nuse std::sync::Arc;\n"),
            &mut out,
        );
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn alias_evasion_rng_applies_outside_sim_crates_too() {
        let file = SourceFile::new(
            PathBuf::from("crates/bench/benches/micro.rs"),
            "use rand::rngs::OsRng as Entropy;\nuse std::time::{Instant as Clock, Duration};\n",
        );
        let mut out = Vec::new();
        alias_evasion(&file, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("OsRng"));
    }

    #[test]
    fn unordered_iter_binding_flags_aliased_maps() {
        let src = "\
use std::collections::HashMap as Map;

pub fn sum() -> u64 {
    let m: Map<u64, u64> = Map::new();
    let mut total = 0;
    for (_k, v) in m.iter() {
        total += v;
    }
    total
}
";
        let f = sim_file(src);
        let mut out = Vec::new();
        // The line rule must miss all of this…
        unordered_iter(&f, &mut out);
        assert!(out.is_empty(), "{out:#?}");
        // …and the binding rule must catch the iteration.
        unordered_iter_binding(&f, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].line, 6);
        assert!(out[0].message.contains("`m`"));
    }

    #[test]
    fn unordered_iter_binding_spares_ordered_maps_and_open_decls() {
        // BTreeMap through the same alias shape: quiet.
        let ordered = "\
use std::collections::BTreeMap as Map;
pub fn sum(m: &Map<u64, u64>) -> u64 {
    let m2: Map<u64, u64> = Map::new();
    for (_k, v) in m2.iter() { let _ = v; }
    0
}
";
        let mut out = Vec::new();
        unordered_iter_binding(&sim_file(ordered), &mut out);
        assert!(out.is_empty(), "{out:#?}");

        // An openly-declared HashMap belongs to `unordered-iter`; the
        // binding rule stays quiet rather than double-reporting.
        let open = "\
pub fn sum() -> u64 {
    let m: std::collections::HashMap<u64, u64> = Default::default();
    for (_k, v) in m.iter() { let _ = v; }
    0
}
";
        out.clear();
        unordered_iter_binding(&sim_file(open), &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn unordered_iter_binding_sees_self_fields() {
        let src = "\
use std::collections::HashSet as Seen;

pub struct Tracker { seen: Seen<u64> }

impl Tracker {
    pub fn total(&self) -> u64 {
        let mut n = 0;
        for v in &self.seen {
            n += v;
        }
        n
    }
}
";
        let mut out = Vec::new();
        unordered_iter_binding(&sim_file(src), &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].line, 8);
    }

    #[test]
    fn panic_in_recovery_flags_try_fns_and_direct_callees() {
        let src = "\
impl Slots {
    pub fn try_get(&self, idx: usize) -> Result<u64, ()> {
        let v = self.inner[idx];
        Ok(v.expect(\"slot present\"))
    }
    fn lookup(&self, idx: usize) -> u64 {
        self.inner[idx].unwrap()
    }
    pub fn try_read(&self, idx: usize) -> Result<u64, ()> {
        Ok(self.lookup(idx))
    }
}
";
        let files = vec![core_file(src)];
        let mut out = Vec::new();
        panic_in_recovery(&files, &mut out);
        let got: Vec<(usize, &str)> = out
            .iter()
            .map(|d| (d.line, d.message.split('`').nth(1).unwrap_or("")))
            .collect();
        assert_eq!(
            got,
            vec![
                (3, "indexing"),
                (4, ".expect(…)"),
                (7, "indexing"),
                (7, ".unwrap()")
            ],
            "{out:#?}"
        );
        assert!(
            out[2].message.contains("`lookup`") && out[2].message.contains("`try_read`"),
            "{}",
            out[2].message
        );
    }

    #[test]
    fn panic_in_recovery_ignores_non_core_and_handled_paths() {
        // Same source outside core: not a recovery path.
        let src = "pub fn try_get(v: &[u64]) -> Result<u64, ()> { Ok(v[0]) }";
        let files = vec![sim_file(src)];
        let mut out = Vec::new();
        panic_in_recovery(&files, &mut out);
        assert!(out.is_empty(), "{out:#?}");

        // Inside core, the sanctioned shapes stay quiet: `?`, `get`,
        // `vec![…]`, attributes and slice patterns are not panics.
        let ok = "\
pub fn try_get(v: &[u64], idx: usize) -> Result<u64, ()> {
    let first = v.get(idx).ok_or(())?;
    let scratch = vec![0u8; 4];
    let [a, b] = split(scratch)?;
    Ok(first + a + b)
}
";
        let files = vec![core_file(ok)];
        out.clear();
        panic_in_recovery(&files, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn layering_flags_upward_use_edges() {
        let f = SourceFile::new(
            PathBuf::from("crates/core/src/uses_bench.rs"),
            "use smart_bench::harness::Runner;\n",
        );
        let files = vec![f];
        let mut out = Vec::new();
        // Nonexistent root: only the use-edge part runs.
        layering(Path::new("/nonexistent"), &files, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "layering");
        assert!(out[0].message.contains("tier"));
    }

    #[test]
    fn layering_allows_downward_and_same_tier_edges() {
        let down = SourceFile::new(
            PathBuf::from("crates/core/src/ok.rs"),
            "use smart_rt::executor::Simulation;\nuse smart_trace::TraceEvent;\n",
        );
        let same = SourceFile::new(
            PathBuf::from("crates/workloads/src/ok.rs"),
            "use smart_race::table::RaceHashTable;\n",
        );
        let files = vec![down, same];
        let mut out = Vec::new();
        layering(Path::new("/nonexistent"), &files, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn toml_dep_parsing_skips_dev_dependencies() {
        let toml = "\
[package]
name = \"smart-race\"

[dependencies]
smart = { path = \"../core\" }
smart-rt = { path = \"../rt\" }

[dev-dependencies]
smart-workloads = { path = \"../workloads\" }
";
        let deps: Vec<String> = parse_toml_deps(toml).into_iter().map(|(_, d)| d).collect();
        assert_eq!(deps, vec!["smart", "smart-rt"]);
    }

    #[test]
    fn parse_number_handles_underscores() {
        assert_eq!(parse_number("1_150),"), Some(1150.0));
        assert_eq!(parse_number("9.09 ns"), Some(9.09));
        assert_eq!(parse_number("abc"), None);
    }

    #[test]
    fn design_extraction_finds_all_constants() {
        let doc = "\
* RNIC pipeline: 9.09 ns/WQE base service ⇒ 110 MOPS ceiling (§6.1).
* Doorbells: 16 per context (4 low-latency: 1 QP each; 12 medium).
* WQE cache: 1024-entry capacity-pressure model; a miss adds 13 ns.
* Backoff unit: `t0 = 4096 cycles` at 2.4 GHz ≈ 1.7 µs.
* Fabric: 2 µs roundtrip budget, 200 Gbps links.
";
        let cal = parse_design_calibration(doc).expect("parses");
        assert_eq!(cal.mops_ceiling, 110.0);
        assert_eq!(cal.doorbells, 16.0);
        assert_eq!(cal.wqe_entries, 1024.0);
        assert_eq!(cal.t0_cycles, 4096.0);
        assert_eq!(cal.roundtrip_us, 2.0);
    }
}
