//! The effect lattice of the `smart-flow` pass.
//!
//! An *effect signature* is the set of observable side-channels a fn can
//! touch, as a bitset over seven atoms:
//!
//! | atom | meaning |
//! |---|---|
//! | `Clock` | reads virtual time (`now`/`sleep`/`wake_at` on the sim handle) |
//! | `Rng` | draws from the seeded PRNG (`SimRng` methods, `with_rng`) |
//! | `SharedMut` | mutates `Rc`/`RefCell`/`Cell`/probe-cell shared state |
//! | `Fabric` | submits RNIC work (verb post, doorbell ring, CQE wait) |
//! | `Spawn` | creates a new coroutine on the executor |
//! | `Await` | contains a suspension point |
//! | `Alloc` | heap-allocates (`format!`/`vec!`/`Box::new`/`to_string`…) |
//!
//! The lattice is the powerset ordered by inclusion; join is bitwise or.
//! [`crate::flow`] seeds intrinsic effects from each fn body and joins
//! them to a fixed point over the workspace call graph. This module owns
//! the bitset itself, the syntactic seed tables, the crate→domain map
//! the isolation rules use, and the `EFFECTS.json` baseline format the
//! `effect-drift` rule diffs against.

/// A set of effect atoms. Ordering/equality are derived from the raw
/// bits, so effect tables sort deterministically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Effects(pub u8);

/// `(bit, canonical name)` in canonical rendering order.
const ATOMS: &[(u8, &str)] = &[
    (1 << 0, "Clock"),
    (1 << 1, "Rng"),
    (1 << 2, "SharedMut"),
    (1 << 3, "Fabric"),
    (1 << 4, "Spawn"),
    (1 << 5, "Await"),
    (1 << 6, "Alloc"),
];

impl Effects {
    pub const EMPTY: Effects = Effects(0);
    pub const CLOCK: Effects = Effects(1 << 0);
    pub const RNG: Effects = Effects(1 << 1);
    pub const SHARED_MUT: Effects = Effects(1 << 2);
    pub const FABRIC: Effects = Effects(1 << 3);
    pub const SPAWN: Effects = Effects(1 << 4);
    pub const AWAIT: Effects = Effects(1 << 5);
    pub const ALLOC: Effects = Effects(1 << 6);

    pub fn join(self, other: Effects) -> Effects {
        Effects(self.0 | other.0)
    }

    pub fn contains(self, other: Effects) -> bool {
        self.0 & other.0 == other.0
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The atom names present, in canonical order.
    pub fn names(self) -> Vec<&'static str> {
        ATOMS
            .iter()
            .filter(|(bit, _)| self.0 & bit != 0)
            .map(|&(_, name)| name)
            .collect()
    }

    /// Parses one canonical atom name.
    pub fn from_name(name: &str) -> Option<Effects> {
        ATOMS
            .iter()
            .find(|(_, n)| *n == name)
            .map(|&(bit, _)| Effects(bit))
    }

    /// Renders as `[Clock, Fabric]` (or `[]` for the pure signature).
    pub fn render(self) -> String {
        format!("[{}]", self.names().join(", "))
    }
}

// ---------------------------------------------------------------------------
// Syntactic seed tables
//
// A method *name* at a call site seeds the caller's intrinsic effects
// even when the callee edge cannot be resolved — these names are the
// simulation's primitive vocabulary, reserved by convention (and the
// kernel fns actually implementing them are seeded as roots by
// `intrinsic_root`, since their bodies bottom out in plain Cell reads).
// ---------------------------------------------------------------------------

/// Virtual-time observation methods (on `SimHandle`/`Simulation`/coros).
pub const CLOCK_METHODS: &[&str] = &["now", "sleep", "sleep_until", "wake_at"];

/// Seeded-PRNG draw methods (`SimRng` inherent API plus the handle's
/// scoped accessors).
pub const RNG_METHODS: &[&str] = &[
    "with_rng",
    "rand_below",
    "next_u64",
    "next_u64_below",
    "next_f64",
    "gen_range",
    "gen_bool",
    "fill_bytes",
];

/// RNIC verb-submission / completion-path methods: the only legal
/// carrier for cross-domain interaction.
pub const FABRIC_METHODS: &[&str] = &[
    "post_send",
    "post_send_as",
    "ring",
    "ring_as",
    "wait_nonempty",
];

/// Interior-mutability write methods (`Cell::set`, `RefCell::borrow_mut`,
/// probe-cell registration).
pub const SHARED_MUT_METHODS: &[&str] = &["set", "borrow_mut", "probe_cell"];

/// Allocating method names (path-call allocators like `Vec::new` are
/// matched separately in the flow walk).
pub const ALLOC_METHODS: &[&str] = &["to_string", "to_vec", "with_capacity"];

/// The intrinsic effect a workspace fn *implements* (rather than calls):
/// the kernel clock/RNG accessors read plain cells, and the RNIC verb
/// paths are the fabric, so name-based call-site seeding alone would
/// leave the primitives themselves pure. Keyed by `(crate, fn name)`.
pub fn intrinsic_root(krate: &str, name: &str) -> Effects {
    let mut e = Effects::EMPTY;
    if krate == "rt" {
        if CLOCK_METHODS.contains(&name) {
            e = e.join(Effects::CLOCK);
        }
        if RNG_METHODS.contains(&name) {
            e = e.join(Effects::RNG);
        }
        if name == "spawn" {
            e = e.join(Effects::SPAWN);
        }
    }
    if krate == "rnic" && FABRIC_METHODS.contains(&name) {
        e = e.join(Effects::FABRIC);
    }
    e
}

// ---------------------------------------------------------------------------
// Scheduling domains
// ---------------------------------------------------------------------------

/// The PDES scheduling domain a crate's code runs in. The parallel
/// simulation planned in ROADMAP #1 maps `Thread` and `Fabric` domains
/// to distinct OS threads with lookahead equal to the fabric latency, so
/// those two may interact **only** through `Fabric` edges; the kernel is
/// the scheduler itself and the observers are measurement layers that
/// never feed state back into the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// `trace`, `rt`: the event loop and its instrumentation substrate.
    Kernel,
    /// `rnic`: the NIC + cluster model; owns all fabric-side state.
    Fabric,
    /// `core` and the apps/serving layers: simulated-thread bodies.
    Thread,
    /// `check`, `fault`: sanitizer/chaos layers with read-mostly hooks.
    Observer,
}

impl Domain {
    pub fn name(self) -> &'static str {
        match self {
            Domain::Kernel => "kernel",
            Domain::Fabric => "fabric",
            Domain::Thread => "thread",
            Domain::Observer => "observer",
        }
    }
}

/// The domain of a workspace crate, if it is simulation code.
pub fn domain_of(krate: &str) -> Option<Domain> {
    match krate {
        "trace" | "rt" => Some(Domain::Kernel),
        "rnic" => Some(Domain::Fabric),
        "core" | "race" | "ford" | "sherman" | "workloads" | "serve" => Some(Domain::Thread),
        "check" | "fault" => Some(Domain::Observer),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// EFFECTS.json — the pinned-entry baseline
// ---------------------------------------------------------------------------

/// Workspace-relative path of the committed effect baseline.
pub const EFFECTS_PATH: &str = "crates/lint/EFFECTS.json";

/// One pinned entry point: a qualified fn name (`crate::Type::fn` or
/// `crate::fn`) and the effect set the baseline asserts for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinnedEntry {
    pub entry: String,
    pub effects: Effects,
    /// 1-based line in EFFECTS.json, for diagnostics.
    pub line: usize,
}

/// Parses the committed baseline. The format is a JSON array with one
/// object per line (`{"entry":"…","effects":["…",…]}`), line-oriented on
/// purpose so this zero-dependency crate can read it with plain string
/// scanning and diffs stay reviewable.
pub fn parse_effects_json(text: &str) -> Result<Vec<PinnedEntry>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if !line.contains("\"entry\"") {
            continue;
        }
        let entry = field_str(line, "entry")
            .ok_or_else(|| format!("EFFECTS.json:{}: malformed entry line", i + 1))?;
        let list = line
            .find('[')
            .and_then(|a| line[a..].find(']').map(|b| &line[a + 1..a + b]))
            .ok_or_else(|| format!("EFFECTS.json:{}: missing effects array", i + 1))?;
        let mut effects = Effects::EMPTY;
        for name in list.split(',') {
            let name = name.trim().trim_matches('"');
            if name.is_empty() {
                continue;
            }
            let atom = Effects::from_name(name)
                .ok_or_else(|| format!("EFFECTS.json:{}: unknown effect atom `{name}`", i + 1))?;
            effects = effects.join(atom);
        }
        out.push(PinnedEntry {
            entry,
            effects,
            line: i + 1,
        });
    }
    Ok(out)
}

/// Extracts `"key":"value"` from a single JSON line.
fn field_str(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let at = line.find(&marker)? + marker.len();
    let end = line[at..].find('"')?;
    Some(line[at..at + end].to_string())
}

/// Renders the baseline file for `(entry, effects)` pairs, sorted by
/// entry name (one object per line; see [`parse_effects_json`]).
pub fn render_effects_json(entries: &[(String, Effects)]) -> String {
    let mut sorted: Vec<&(String, Effects)> = entries.iter().collect();
    sorted.sort();
    let mut out = String::from("[\n");
    for (i, (entry, eff)) in sorted.iter().enumerate() {
        let atoms: Vec<String> = eff.names().iter().map(|n| format!("\"{n}\"")).collect();
        out.push_str(&format!(
            "  {{\"entry\":\"{}\",\"effects\":[{}]}}{}\n",
            entry,
            atoms.join(","),
            if i + 1 == sorted.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_contains_and_canonical_order() {
        let e = Effects::FABRIC.join(Effects::CLOCK).join(Effects::AWAIT);
        assert!(e.contains(Effects::CLOCK));
        assert!(!e.contains(Effects::RNG));
        assert_eq!(e.names(), vec!["Clock", "Fabric", "Await"]);
        assert_eq!(e.render(), "[Clock, Fabric, Await]");
        assert_eq!(Effects::EMPTY.render(), "[]");
        assert_eq!(Effects::from_name("SharedMut"), Some(Effects::SHARED_MUT));
        assert_eq!(Effects::from_name("Nope"), None);
    }

    #[test]
    fn roots_cover_the_primitive_vocabulary() {
        assert_eq!(intrinsic_root("rt", "now"), Effects::CLOCK);
        assert_eq!(intrinsic_root("rt", "spawn"), Effects::SPAWN);
        assert_eq!(intrinsic_root("rnic", "post_send"), Effects::FABRIC);
        assert_eq!(intrinsic_root("core", "now"), Effects::EMPTY);
        assert_eq!(intrinsic_root("rnic", "now"), Effects::EMPTY);
    }

    #[test]
    fn domains_partition_the_sim_crates() {
        for c in crate::rules::SIM_CRATES {
            assert!(domain_of(c).is_some(), "{c} must have a domain");
        }
        assert_eq!(domain_of("rt"), Some(Domain::Kernel));
        assert_eq!(domain_of("rnic"), Some(Domain::Fabric));
        assert_eq!(domain_of("serve"), Some(Domain::Thread));
        assert_eq!(domain_of("bench"), None);
    }

    #[test]
    fn effects_json_roundtrips() {
        let entries = vec![
            (
                "rt::SimHandle::now".to_string(),
                Effects::CLOCK.join(Effects::SHARED_MUT),
            ),
            ("core::SmartCoro::sync".to_string(), Effects::EMPTY),
        ];
        let text = render_effects_json(&entries);
        let parsed = parse_effects_json(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        // Rendering sorts by entry name.
        assert_eq!(parsed[0].entry, "core::SmartCoro::sync");
        assert_eq!(parsed[0].effects, Effects::EMPTY);
        assert_eq!(parsed[1].entry, "rt::SimHandle::now");
        assert_eq!(parsed[1].effects, Effects::CLOCK.join(Effects::SHARED_MUT));
        assert_eq!(parsed[1].line, 3);
    }

    #[test]
    fn effects_json_rejects_unknown_atoms() {
        let bad = "[\n  {\"entry\":\"rt::now\",\"effects\":[\"Clok\"]}\n]\n";
        assert!(parse_effects_json(bad).unwrap_err().contains("Clok"));
    }
}
