//! Name resolution (syntactic) over the item layer.
//!
//! Three small facilities the structural rules share:
//!
//! * [`Resolver`] — per-file `use`-alias resolution: maps every locally
//!   bound import name to its full path, so `Clock::now()` after
//!   `use std::time::Instant as Clock;` resolves to
//!   `std::time::Instant::now`.
//! * [`Bindings`] — block-scoped `let`-binding tracker: walks a fn body
//!   recording each binding's syntactic type head (from the `:` type
//!   annotation or the constructor path on the RHS), honouring shadowing
//!   and scope exit.
//! * [`crate_of`] / [`dep_crate`] — workspace-crate attribution for the
//!   cross-file layering rule.
//!
//! Everything here is resolution of what is *written*, not of what the
//! compiler would infer: a binding with no annotation and an opaque RHS
//! has no type, and that is fine — rules only act on what they can see.

use std::collections::BTreeMap;
use std::path::Path;

use crate::items::FileMap;
use crate::lex::{is_path_sep, Tok};

/// Per-file import resolution.
#[derive(Debug, Default)]
pub struct Resolver {
    map: BTreeMap<String, Vec<String>>,
}

impl Resolver {
    pub fn new(items: &FileMap) -> Self {
        let mut map = BTreeMap::new();
        for u in &items.uses {
            if let Some(name) = u.local_name() {
                // First import of a name wins; duplicates are a compile
                // error anyway.
                map.entry(name.to_string())
                    .or_insert_with(|| u.path.clone());
            }
        }
        Resolver { map }
    }

    /// The full path a local name was imported from, if any.
    pub fn lookup(&self, name: &str) -> Option<&[String]> {
        self.map.get(name).map(|v| v.as_slice())
    }

    /// Expands a written path through the alias map: if the head segment
    /// is an import, it is replaced by its full path. Returns the
    /// `::`-joined expansion.
    pub fn expand(&self, segments: &[String]) -> String {
        let mut full: Vec<&str> = Vec::new();
        if let Some(head) = segments.first() {
            if let Some(target) = self.map.get(head) {
                full.extend(target.iter().map(|s| s.as_str()));
                full.extend(segments[1..].iter().map(|s| s.as_str()));
                return full.join("::");
            }
        }
        segments
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join("::")
    }
}

/// Reads the `::`-separated path expression starting at token `i`,
/// returning its segments and the index just past them.
pub fn path_at(toks: &[Tok], mut i: usize) -> (Vec<String>, usize) {
    let mut segs = Vec::new();
    while let Some(seg) = toks.get(i).and_then(|t| t.ident()) {
        segs.push(seg.to_string());
        i += 1;
        if is_path_sep(toks, i) {
            i += 2;
        } else {
            break;
        }
    }
    (segs, i)
}

/// One tracked `let` binding.
#[derive(Debug, Clone)]
pub struct Binding {
    pub name: String,
    pub line: usize,
    /// Identifier tokens of the declared/constructed type (annotation
    /// first; else the RHS constructor path), alias-expanded head
    /// included. Empty when nothing syntactic names a type.
    pub ty: Vec<String>,
}

/// Block-scoped binding table for one fn-body walk. The caller drives
/// token iteration and reports `{` / `}` and `let` statements; lookups
/// see innermost bindings first.
#[derive(Debug, Default)]
pub struct Bindings {
    scopes: Vec<Vec<Binding>>,
}

impl Bindings {
    pub fn enter(&mut self) {
        self.scopes.push(Vec::new());
    }

    pub fn exit(&mut self) {
        self.scopes.pop();
    }

    pub fn declare(&mut self, b: Binding) {
        if let Some(top) = self.scopes.last_mut() {
            top.push(b);
        }
    }

    /// The innermost binding with this name, if tracked.
    pub fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.iter().rev().find(|b| b.name == name))
    }
}

/// Parses a `let` statement whose `let` keyword sits at token `i`,
/// returning the binding (with its syntactic type, alias-expanded via
/// `res`) and the index just past the pattern/annotation — or `None` for
/// destructuring patterns and `_`.
pub fn let_binding_at(toks: &[Tok], mut i: usize, res: &Resolver) -> Option<(Binding, usize)> {
    debug_assert!(toks[i].is_ident("let"));
    i += 1;
    if toks.get(i).is_some_and(|t| t.is_ident("mut")) {
        i += 1;
    }
    let name = toks.get(i)?.ident()?.to_string();
    if name == "_" {
        return None;
    }
    let line = toks[i].line;
    i += 1;
    let mut ty: Vec<String> = Vec::new();
    if toks.get(i).is_some_and(|t| t.is_punct(':')) && !is_path_sep(toks, i) {
        // Annotation: idents until `=` or `;` at bracket depth 0.
        i += 1;
        let mut depth = 0i64;
        while let Some(t) = toks.get(i) {
            match &t.kind {
                crate::lex::TokKind::Punct('<')
                | crate::lex::TokKind::Punct('(')
                | crate::lex::TokKind::Punct('[') => depth += 1,
                crate::lex::TokKind::Punct('>')
                | crate::lex::TokKind::Punct(')')
                | crate::lex::TokKind::Punct(']') => depth -= 1,
                crate::lex::TokKind::Punct('=') | crate::lex::TokKind::Punct(';') if depth <= 0 => {
                    break
                }
                crate::lex::TokKind::Ident(s) => ty.push(s.clone()),
                _ => {}
            }
            i += 1;
        }
    } else if toks.get(i).is_some_and(|t| t.is_punct('=')) {
        // No annotation: take the RHS head path (`HashMap::with_capacity`
        // names the type; a bare call or method chain names nothing).
        let (segs, _) = path_at(toks, i + 1);
        if segs.len() >= 2 {
            // Drop the trailing constructor fn segment (`new`, `with_…`,
            // `from…`, `default`); what remains is the type path.
            let head = &segs[..segs.len() - 1];
            ty = head.to_vec();
        }
    }
    // Expand the type head through the alias map so `Map<u64>` after
    // `use … ::HashMap as Map;` is seen as a HashMap.
    if let Some(first) = ty.first().cloned() {
        if let Some(full) = res.lookup(&first) {
            let mut expanded: Vec<String> = full.to_vec();
            expanded.extend(ty.into_iter().skip(1));
            ty = expanded;
        }
    }
    Some((Binding { name, line, ty }, i))
}

/// The workspace crate owning `rel` (a root-relative path), i.e. the
/// `<name>` in `crates/<name>/…`.
pub fn crate_of(rel: &Path) -> Option<String> {
    let s = rel.to_string_lossy().replace('\\', "/");
    let rest = s.strip_prefix("crates/")?;
    let (name, _) = rest.split_once('/')?;
    Some(name.to_string())
}

/// Maps an imported crate identifier (`smart_rt`, `smart`) or a
/// Cargo.toml dependency name (`smart-rt`, `smart`) to its workspace
/// crate directory name (`rt`, `core`).
pub fn dep_crate(name: &str) -> Option<String> {
    let name = name.replace('-', "_");
    if name == "smart" {
        return Some("core".to_string());
    }
    name.strip_prefix("smart_").map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse;
    use crate::lex::lex;
    use crate::scrub::scrub;
    use std::path::PathBuf;

    fn setup(src: &str) -> (Vec<Tok>, Resolver) {
        let toks = lex(&scrub(src).text).toks;
        let items = parse(&toks);
        let res = Resolver::new(&items);
        (toks, res)
    }

    #[test]
    fn alias_expansion_sees_through_renames() {
        let (toks, res) = setup("use std::time::Instant as Clock;\nfn f() { Clock::now(); }\n");
        let at = toks.iter().position(|t| t.is_ident("Clock")).unwrap();
        // Skip the use-decl occurrence; find the usage.
        let at = toks[at + 1..]
            .iter()
            .position(|t| t.is_ident("Clock"))
            .unwrap()
            + at
            + 1;
        let (segs, _) = path_at(&toks, at);
        assert_eq!(res.expand(&segs), "std::time::Instant::now");
    }

    #[test]
    fn plain_imports_resolve_to_their_full_path() {
        let (_, res) = setup("use std::collections::HashMap;\n");
        assert_eq!(
            res.lookup("HashMap").unwrap(),
            ["std", "collections", "HashMap"]
        );
    }

    #[test]
    fn let_bindings_capture_annotation_and_rhs_types() {
        let src = "use std::collections::HashMap as Map;\nfn f() { let a: Map<u64, u64> = Map::new(); let b = Map::with_capacity(4); let c = helper(); }\n";
        let (toks, res) = setup(src);
        let lets: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("let"))
            .map(|(i, _)| i)
            .collect();
        let (a, _) = let_binding_at(&toks, lets[0], &res).unwrap();
        assert!(a.ty.contains(&"HashMap".to_string()), "{:?}", a.ty);
        let (b, _) = let_binding_at(&toks, lets[1], &res).unwrap();
        assert!(b.ty.contains(&"HashMap".to_string()), "{:?}", b.ty);
        let (c, _) = let_binding_at(&toks, lets[2], &res).unwrap();
        assert!(c.ty.is_empty(), "{:?}", c.ty);
    }

    #[test]
    fn bindings_respect_scopes_and_shadowing() {
        let mut b = Bindings::default();
        b.enter();
        b.declare(Binding {
            name: "m".into(),
            line: 1,
            ty: vec!["HashMap".into()],
        });
        b.enter();
        b.declare(Binding {
            name: "m".into(),
            line: 2,
            ty: vec!["BTreeMap".into()],
        });
        assert_eq!(b.lookup("m").unwrap().ty, vec!["BTreeMap"]);
        b.exit();
        assert_eq!(b.lookup("m").unwrap().ty, vec!["HashMap"]);
        b.exit();
        assert!(b.lookup("m").is_none());
    }

    #[test]
    fn crate_attribution() {
        assert_eq!(
            crate_of(&PathBuf::from("crates/rt/src/executor.rs")).as_deref(),
            Some("rt")
        );
        assert_eq!(crate_of(&PathBuf::from("tests/lint.rs")), None);
        assert_eq!(dep_crate("smart-rnic").as_deref(), Some("rnic"));
        assert_eq!(dep_crate("smart").as_deref(), Some("core"));
        assert_eq!(dep_crate("serde"), None);
    }
}
