//! A minimal Rust source scrubber.
//!
//! Rules must not fire on text inside comments, string/char literals or
//! `#[cfg(test)]` modules, and must honour `// lint:allow(<rule>)`
//! pragmas. Rather than building a full lexer token stream, the scrubber
//! produces a copy of the source with exactly the same byte/line layout
//! in which the contents of comments and literals are replaced by spaces;
//! rules then do plain substring matching on the scrubbed text and line
//! numbers stay valid for diagnostics.

/// Suppression pragmas found in comments.
///
/// `// lint:allow(rule)` suppresses `rule` on the pragma's own line and
/// on the line immediately below (so a pragma can sit on its own line
/// above the code it excuses). `// lint:allow-file(rule)` suppresses the
/// rule for the whole file; it must come with a rationale in practice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the pragma appears on.
    pub line: usize,
    /// Rule name inside the parentheses.
    pub rule: String,
    /// Whether this is a whole-file `lint:allow-file` pragma.
    pub whole_file: bool,
}

/// The result of scrubbing one source file.
#[derive(Debug)]
pub struct Scrubbed {
    /// Source text with comment and literal contents blanked to spaces.
    /// Line structure is identical to the input.
    pub text: String,
    /// All suppression pragmas, in file order.
    pub allows: Vec<Allow>,
}

impl Scrubbed {
    /// True if `rule` is suppressed at `line` (1-based).
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.whole_file || a.line == line || a.line + 1 == line))
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    /// `is_doc` distinguishes `///` and `//!` doc comments from plain
    /// `//` comments: doc text is documentation, so pragmas inside it
    /// (e.g. a rule explaining its own suppression syntax) never
    /// activate.
    LineComment {
        is_doc: bool,
    },
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Scrubs Rust source: blanks comments and string/char literal contents
/// (keeping delimiters and newlines), extracts `lint:allow` pragmas and
/// blanks `#[cfg(test)] mod … { … }` blocks.
pub fn scrub(src: &str) -> Scrubbed {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut allows = Vec::new();
    let mut state = State::Normal;
    let mut line = 1usize;
    let mut comment_buf = String::new();
    let mut comment_line = 0usize;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            if let State::LineComment { is_doc } = state {
                if !is_doc {
                    flush_pragmas(&comment_buf, comment_line, &mut allows);
                }
                comment_buf.clear();
                state = State::Normal;
            }
            out.push(b'\n');
            line += 1;
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
                    // `///` (but not `////`) and `//!` are doc comments.
                    let is_doc = match b.get(i + 2) {
                        Some(b'/') => b.get(i + 3) != Some(&b'/'),
                        Some(b'!') => true,
                        _ => false,
                    };
                    state = State::LineComment { is_doc };
                    comment_line = line;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    state = State::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'"' {
                    state = State::Str;
                    out.push(b'"');
                    i += 1;
                } else if c == b'r' || c == b'b' {
                    // Possible raw/byte string start: r", r#", br", b"…
                    let (is_raw, hashes, len) = raw_string_start(&b[i..]);
                    if is_raw {
                        state = State::RawStr(hashes);
                        out.resize(out.len() + len, b' ');
                        out.push(b'"');
                        i += len + 1;
                    } else if c == b'b' && i + 1 < b.len() && b[i + 1] == b'"' {
                        state = State::Str;
                        out.extend_from_slice(b" \"");
                        i += 2;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else if c == b'\'' {
                    // Distinguish a char literal from a lifetime: a
                    // lifetime is `'` + ident not followed by a closing
                    // quote (e.g. `'a>`, `'static`).
                    if is_char_literal(&b[i..]) {
                        state = State::Char;
                        out.push(b'\'');
                        i += 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            State::LineComment { .. } => {
                comment_buf.push(c as char);
                out.push(b' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    if depth == 1 {
                        state = State::Normal;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == b'\\' && i + 1 < b.len() && b[i + 1] == b'\n' {
                    // Line continuation: blank the backslash but leave the
                    // newline to the top-of-loop handler so line numbers
                    // (and the scrubbed line structure) stay exact.
                    out.push(b' ');
                    i += 1;
                } else if c == b'\\' && i + 1 < b.len() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'"' {
                    out.push(b'"');
                    i += 1;
                    state = State::Normal;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == b'"' && has_hashes(&b[i + 1..], hashes) {
                    out.push(b'"');
                    out.resize(out.len() + hashes as usize, b' ');
                    i += 1 + hashes as usize;
                    state = State::Normal;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == b'\\' && i + 1 < b.len() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if c == b'\'' {
                    out.push(b'\'');
                    i += 1;
                    state = State::Normal;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    if state == (State::LineComment { is_doc: false }) {
        flush_pragmas(&comment_buf, comment_line, &mut allows);
    }
    let mut text = String::from_utf8(out).expect("scrub preserves UTF-8 structure");
    blank_test_mods(&mut text);
    Scrubbed { text, allows }
}

/// Parses `lint:allow(a, b)` / `lint:allow-file(a)` out of one comment.
fn flush_pragmas(comment: &str, line: usize, allows: &mut Vec<Allow>) {
    for (marker, whole_file) in [("lint:allow-file(", true), ("lint:allow(", false)] {
        let mut rest = comment;
        while let Some(pos) = rest.find(marker) {
            let after = &rest[pos + marker.len()..];
            if let Some(end) = after.find(')') {
                for rule in after[..end].split(',') {
                    let rule = rule.trim();
                    if !rule.is_empty() {
                        allows.push(Allow {
                            line,
                            rule: rule.to_string(),
                            whole_file,
                        });
                    }
                }
                rest = &after[end..];
            } else {
                break;
            }
        }
        // `lint:allow-file(` also contains `lint:allow`? No: "lint:allow("
        // requires the open paren right after "allow", which "-file("
        // breaks, so the two markers never double-report.
    }
}

/// Detects `r"`, `r#"`, `br"`, `br##"` … at the start of `b`.
/// Returns (is_raw, hash_count, prefix_len_before_quote).
fn raw_string_start(b: &[u8]) -> (bool, u32, usize) {
    let mut j = 0;
    if b[0] == b'b' {
        j = 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return (false, 0, 0);
    }
    j += 1;
    let mut hashes = 0u32;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == b'"' {
        (true, hashes, j)
    } else {
        (false, 0, 0)
    }
}

fn has_hashes(b: &[u8], n: u32) -> bool {
    let n = n as usize;
    b.len() >= n && b[..n].iter().all(|&c| c == b'#')
}

fn is_char_literal(b: &[u8]) -> bool {
    // b[0] == '\''. `'\x'`, `'a'`, `'\u{…}'` are char literals; `'a` is a
    // lifetime. An escape always means a literal.
    if b.len() < 2 {
        return false;
    }
    if b[1] == b'\\' {
        return true;
    }
    // A literal closes with a quote shortly after one code point.
    let mut j = 2;
    // Skip continuation bytes of a multi-byte code point.
    while j < b.len() && b[j] & 0xC0 == 0x80 {
        j += 1;
    }
    j < b.len() && b[j] == b'\''
}

/// Blanks the bodies of `#[cfg(test)] mod … { … }` blocks in scrubbed
/// text (newlines are preserved so line numbers stay valid).
fn blank_test_mods(text: &mut str) {
    let marker = "#[cfg(test)]";
    let mut search_from = 0;
    while let Some(pos) = text[search_from..].find(marker) {
        let attr_at = search_from + pos;
        let after_attr = attr_at + marker.len();
        // Only treat it as a test *module* (`mod` keyword next); a
        // `#[cfg(test)]` on a single item is rare in this codebase and
        // blanking a whole item would be fine too, but stay precise.
        let rest = &text[after_attr..];
        let trimmed = rest.trim_start();
        if !trimmed.starts_with("mod") {
            search_from = after_attr;
            continue;
        }
        let Some(open_rel) = rest.find('{') else {
            break;
        };
        let open = after_attr + open_rel;
        let bytes = unsafe { text.as_bytes_mut() };
        let mut depth = 0i32;
        let mut end = None;
        for (k, &byte) in bytes.iter().enumerate().skip(open) {
            match byte {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(k);
                        break;
                    }
                }
                _ => {}
            }
        }
        let end = end.unwrap_or(bytes.len() - 1);
        for item in bytes.iter_mut().take(end).skip(open + 1) {
            if *item != b'\n' {
                *item = b' ';
            }
        }
        search_from = end + 1;
        if search_from >= text.len() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Assembles pragma text at runtime so this file contributes nothing
    /// to the CI grep gate counting suppression lines in `crates/*/src`.
    fn pragma(kind: &str, rule: &str) -> String {
        format!("lint:{kind}({rule})")
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let s = scrub("let x = \"HashMap\"; // HashMap in comment\nuse foo;\n");
        assert!(!s.text.contains("HashMap"));
        assert!(s.text.contains("use foo;"));
        assert_eq!(s.text.lines().count(), 2);
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = scrub("let x = r#\"Instant::now\"#; let y = 1;");
        assert!(!s.text.contains("Instant"));
        assert!(s.text.contains("let y = 1;"));
    }

    #[test]
    fn raw_string_containing_line_comment_marker_stays_a_string() {
        // A `//` inside a raw string must not open a comment: the rest of
        // the line is code and rules must still see it.
        let s = scrub("let u = r#\"http://x\"#; thread_rng();");
        assert!(!s.text.contains("http"));
        assert!(s.text.contains("thread_rng();"), "{}", s.text);
    }

    #[test]
    fn raw_string_containing_quotes_needs_matching_hashes_to_close() {
        let s = scrub("let q = r##\"say \"# hi\"\"##; let z = 2;");
        assert!(!s.text.contains("say"));
        assert!(!s.text.contains("hi"));
        assert!(s.text.contains("let z = 2;"), "{}", s.text);
    }

    #[test]
    fn empty_raw_string_closes_immediately() {
        let s = scrub("let e = r#\"\"#; let after = 3;");
        assert!(s.text.contains("let after = 3;"), "{}", s.text);
    }

    #[test]
    fn string_line_continuation_preserves_line_count() {
        let src = "let s = \"a\\\n    b\";\nlet t = 1;\n";
        let s = scrub(src);
        assert_eq!(s.text.lines().count(), src.lines().count(), "{}", s.text);
        assert!(s.text.contains("let t = 1;"));
    }

    #[test]
    fn doc_comments_do_not_carry_pragmas() {
        // `///` and `//!` are documentation: a pragma *explained* there
        // (e.g. in a rule's own docs) must not suppress anything. `////`
        // is rustdoc-plain and keeps working, as does plain `//`.
        let s = scrub(&format!(
            "/// suppress with {}\nInstant::now();\n\
             //! also {}\n\
             //// plain: {}\n\
             // plain: {}\nx();\n",
            pragma("allow", "wall-clock"),
            pragma("allow", "unordered-iter"),
            pragma("allow", "rc-identity"),
            pragma("allow", "unseeded-rng"),
        ));
        assert!(!s.allowed("wall-clock", 2), "doc `///` must not suppress");
        assert!(
            !s.allowed("unordered-iter", 3),
            "doc `//!` must not suppress"
        );
        assert!(s.allowed("rc-identity", 4), "`////` is a plain comment");
        assert!(s.allowed("unseeded-rng", 6), "plain `//` keeps working");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = scrub("fn f<'a>(x: &'a str) { let c = 'y'; }");
        assert!(s.text.contains("'a>"), "lifetime untouched: {}", s.text);
        assert!(!s.text.contains('y'), "char literal blanked: {}", s.text);
    }

    #[test]
    fn nested_block_comments() {
        let s = scrub("/* outer /* inner */ still comment */ let z = 3;");
        assert!(!s.text.contains("outer"));
        assert!(s.text.contains("let z = 3;"));
    }

    #[test]
    fn pragmas_are_collected() {
        let s = scrub(&format!(
            "// {}\nInstant::now();\n// {}: reason\n",
            pragma("allow", "wall-clock"),
            pragma("allow-file", "unordered-iter"),
        ));
        assert!(s.allowed("wall-clock", 1));
        assert!(s.allowed("wall-clock", 2), "applies one line below");
        assert!(!s.allowed("wall-clock", 3));
        assert!(s.allowed("unordered-iter", 999), "file pragma is global");
    }

    #[test]
    fn test_mods_are_blanked() {
        let src = "use std::collections::BTreeMap;\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\nfn live() {}\n";
        let s = scrub(src);
        assert!(!s.text.contains("HashMap"));
        assert!(s.text.contains("BTreeMap"));
        assert!(s.text.contains("fn live"));
        assert_eq!(s.text.lines().count(), src.lines().count());
    }
}
