//! Item and scope extraction over the token stream.
//!
//! Builds a lightweight, purely syntactic map of one file: flattened
//! `use` declarations (groups and `as`-renames resolved to full paths),
//! `fn` items with brace-matched body spans and return-type idents,
//! and `struct` fields with their type idents. No name resolution
//! across files, no generics semantics — just enough structure for the
//! rules to see through renames and track bindings to their scopes.

use crate::lex::{is_path_sep, Tok, TokKind};

/// One flattened `use` leaf: `use a::b::{c as d, e};` yields two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// 1-based line of the leaf segment (diagnostics point here).
    pub line: usize,
    /// Whether the declaration re-exports (`pub use`).
    pub is_pub: bool,
    /// Full path segments, e.g. `["std", "time", "Instant"]`.
    pub path: Vec<String>,
    /// `Some("Clock")` for `as Clock`.
    pub alias: Option<String>,
    /// `use a::b::*;`.
    pub glob: bool,
}

impl UseDecl {
    /// The name this import binds locally (alias if renamed, else the
    /// last path segment). `None` for globs.
    pub fn local_name(&self) -> Option<&str> {
        if self.glob {
            return None;
        }
        self.alias
            .as_deref()
            .or_else(|| self.path.last().map(|s| s.as_str()))
    }
}

/// One `fn` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token indices of the body's `{` and its matching `}`; `None` for
    /// trait-method signatures.
    pub body: Option<(usize, usize)>,
    /// Identifier tokens of the return type (`-> Result<Self, E>` gives
    /// `["Result", "Self", "E"]`); empty when the fn returns `()`.
    pub ret: Vec<String>,
    /// The `impl` type this fn sits in, if any.
    pub impl_type: Option<String>,
}

impl FnItem {
    /// Heuristic: a constructor builds the value it returns, so its
    /// allocations are setup cost, not per-event cost. True when the
    /// return type names `Self` or the enclosing impl type, or the fn is
    /// `default`.
    pub fn is_constructor(&self) -> bool {
        self.ret.iter().any(|r| r == "Self")
            || self
                .impl_type
                .as_ref()
                .is_some_and(|t| self.ret.iter().any(|r| r == t))
            || self.name == "default"
    }
}

/// One named `struct` field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDecl {
    pub name: String,
    pub line: usize,
    /// Identifier tokens of the field type, in order.
    pub ty: Vec<String>,
}

/// One nominal type declaration (`struct` or `enum`), recorded so
/// cross-file passes can attribute a written type name to the crate that
/// defines it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeDecl {
    pub name: String,
    pub line: usize,
}

/// The item map of one file.
#[derive(Debug, Default)]
pub struct FileMap {
    pub uses: Vec<UseDecl>,
    pub fns: Vec<FnItem>,
    pub fields: Vec<FieldDecl>,
    pub types: Vec<TypeDecl>,
}

impl FileMap {
    /// The fn whose body span contains token index `i`, if any (the
    /// innermost one — nested fns shadow their parent).
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .rev()
            .find(|f| f.body.is_some_and(|(o, c)| o < i && i < c))
    }
}

/// Finds the matching close delimiter for the open delimiter at `open`.
/// Counts only the same delimiter pair, which is sound because delimiters
/// in valid (scrubbed) Rust are balanced. Returns the index of the close
/// token, or the last index if unbalanced (truncated input).
pub fn matching(toks: &[Tok], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Skips a balanced generic argument list starting at `<`, returning the
/// index just past the matching `>`. Tolerates `>>` (two puncts) since
/// the lexer emits single chars.
pub(crate) fn skip_generics(toks: &[Tok], mut i: usize) -> usize {
    let mut depth = 0i64;
    while i < toks.len() {
        if toks[i].is_punct('<') {
            depth += 1;
        } else if toks[i].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        } else if toks[i].is_punct('(') {
            i = matching(toks, i, '(', ')');
        } else if toks[i].is_punct(';') || toks[i].is_punct('{') {
            // Malformed/unexpected: bail rather than eat the file.
            return i;
        }
        i += 1;
    }
    i
}

/// Parses the token stream into a [`FileMap`].
pub fn parse(toks: &[Tok]) -> FileMap {
    let mut map = FileMap::default();
    let mut impl_stack: Vec<(usize, Option<String>)> = Vec::new(); // (close idx, type)
    let mut saw_pub = false;
    let mut i = 0;
    while i < toks.len() {
        while impl_stack.last().is_some_and(|&(close, _)| i > close) {
            impl_stack.pop();
        }
        let t = &toks[i];
        match &t.kind {
            TokKind::Punct('#') if i + 1 < toks.len() && toks[i + 1].is_punct('[') => {
                i = matching(toks, i + 1, '[', ']') + 1;
            }
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => {
                saw_pub = false;
                i += 1;
            }
            TokKind::Ident(kw) if kw == "pub" => {
                saw_pub = true;
                // Skip a `pub(crate)`/`pub(in …)` restriction.
                if i + 1 < toks.len() && toks[i + 1].is_punct('(') {
                    i = matching(toks, i + 1, '(', ')') + 1;
                } else {
                    i += 1;
                }
            }
            TokKind::Ident(kw) if kw == "use" => {
                i = parse_use(toks, i + 1, saw_pub, &mut Vec::new(), &mut map.uses);
                saw_pub = false;
            }
            TokKind::Ident(kw) if kw == "impl" => {
                i = parse_impl_header(toks, i + 1, &mut impl_stack);
                saw_pub = false;
            }
            TokKind::Ident(kw) if kw == "fn" => {
                let impl_type = impl_stack.last().and_then(|(_, t)| t.clone());
                i = parse_fn(toks, i, impl_type, &mut map.fns);
                saw_pub = false;
            }
            TokKind::Ident(kw) if kw == "struct" || kw == "enum" => {
                if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                    map.types.push(TypeDecl {
                        name: name.to_string(),
                        line: toks[i + 1].line,
                    });
                }
                if kw == "struct" {
                    i = parse_struct(toks, i + 1, &mut map.fields);
                } else {
                    i += 1;
                }
                saw_pub = false;
            }
            _ => {
                i += 1;
            }
        }
    }
    map
}

/// Parses one `use` tree starting just past the `use` keyword (or at a
/// group element), appending flattened leaves. Returns the index past the
/// terminating `;` / `,` / `}`.
fn parse_use(
    toks: &[Tok],
    mut i: usize,
    is_pub: bool,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseDecl>,
) -> usize {
    let base_len = prefix.len();
    loop {
        if i >= toks.len() {
            break;
        }
        if toks[i].is_punct('*') {
            out.push(UseDecl {
                line: toks[i].line,
                is_pub,
                path: prefix.clone(),
                alias: None,
                glob: true,
            });
            i += 1;
            break;
        }
        if toks[i].is_punct('{') {
            // Group: recurse per element until the matching `}`.
            let close = matching(toks, i, '{', '}');
            i += 1;
            while i < close {
                i = parse_use(toks, i, is_pub, prefix, out);
                if i < toks.len() && toks[i].is_punct(',') {
                    i += 1;
                }
            }
            i = close + 1;
            break;
        }
        let Some(seg) = toks[i].ident().map(str::to_string) else {
            break;
        };
        let line = toks[i].line;
        i += 1;
        if seg == "as" {
            // Shouldn't happen (handled below), but don't loop forever.
            break;
        }
        let is_self = seg == "self";
        if !is_self {
            prefix.push(seg);
        }
        if is_path_sep(toks, i) {
            i += 2;
            continue;
        }
        let alias = if i < toks.len() && toks[i].is_ident("as") {
            let a = toks.get(i + 1).and_then(|t| t.ident()).map(str::to_string);
            i += 2;
            a
        } else {
            None
        };
        out.push(UseDecl {
            line,
            is_pub,
            path: prefix.clone(),
            alias,
            glob: false,
        });
        break;
    }
    prefix.truncate(base_len);
    // Consume a trailing `;` so the caller resumes at the next item.
    if i < toks.len() && toks[i].is_punct(';') {
        i += 1;
    }
    i
}

/// Parses an `impl` header starting just past the `impl` keyword, pushes
/// the (body close index, self-type name) frame, and returns the index
/// just past the body's `{`.
fn parse_impl_header(
    toks: &[Tok],
    mut i: usize,
    stack: &mut Vec<(usize, Option<String>)>,
) -> usize {
    if i < toks.len() && toks[i].is_punct('<') {
        i = skip_generics(toks, i);
    }
    // Walk to the body `{`, remembering the last path's final ident. For
    // `impl Trait for Type` the walk ends on `Type`'s path; for an
    // inherent impl it ends on the type itself.
    let mut last_ident: Option<String> = None;
    while i < toks.len() && !toks[i].is_punct('{') {
        match &toks[i].kind {
            TokKind::Ident(s) if s == "where" => break,
            TokKind::Ident(s) if s == "for" || s == "dyn" => {
                last_ident = None;
                i += 1;
            }
            TokKind::Ident(s) => {
                last_ident = Some(s.clone());
                i += 1;
            }
            TokKind::Punct('<') => i = skip_generics(toks, i),
            _ => i += 1,
        }
    }
    while i < toks.len() && !toks[i].is_punct('{') {
        i += 1;
    }
    if i < toks.len() {
        let close = matching(toks, i, '{', '}');
        stack.push((close, last_ident));
        i += 1;
    }
    i
}

/// Parses one `fn` item starting at the `fn` keyword; returns the index
/// just past the signature (the body is recorded but not consumed, so
/// nested fns inside it are still visited).
fn parse_fn(toks: &[Tok], at: usize, impl_type: Option<String>, out: &mut Vec<FnItem>) -> usize {
    let line = toks[at].line;
    let mut i = at + 1;
    let Some(name) = toks.get(i).and_then(|t| t.ident()).map(str::to_string) else {
        return i;
    };
    i += 1;
    if i < toks.len() && toks[i].is_punct('<') {
        i = skip_generics(toks, i);
    }
    if i < toks.len() && toks[i].is_punct('(') {
        i = matching(toks, i, '(', ')') + 1;
    }
    // Return type: idents between `->` and the body `{` / `;` / `where`.
    let mut ret = Vec::new();
    let has_arrow = i + 1 < toks.len() && toks[i].is_punct('-') && toks[i + 1].is_punct('>');
    if has_arrow {
        i += 2;
        while i < toks.len() {
            match &toks[i].kind {
                TokKind::Punct('{') | TokKind::Punct(';') => break,
                TokKind::Ident(s) if s == "where" => break,
                TokKind::Ident(s) => {
                    ret.push(s.clone());
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }
    // Skip a where clause to the body.
    while i < toks.len() && !toks[i].is_punct('{') && !toks[i].is_punct(';') {
        i += 1;
    }
    let body = if i < toks.len() && toks[i].is_punct('{') {
        Some((i, matching(toks, i, '{', '}')))
    } else {
        None
    };
    out.push(FnItem {
        name,
        line,
        body,
        ret,
        impl_type,
    });
    i + 1
}

/// Parses a `struct` item starting just past the keyword, collecting
/// named fields. Tuple structs and unit structs contribute nothing.
fn parse_struct(toks: &[Tok], mut i: usize, out: &mut Vec<FieldDecl>) -> usize {
    // Name, generics.
    if toks.get(i).and_then(|t| t.ident()).is_some() {
        i += 1;
    }
    if i < toks.len() && toks[i].is_punct('<') {
        i = skip_generics(toks, i);
    }
    if i >= toks.len() || !toks[i].is_punct('{') {
        return i; // unit or tuple struct
    }
    let close = matching(toks, i, '{', '}');
    i += 1;
    while i < close {
        // Skip attributes and visibility on the field.
        if toks[i].is_punct('#') && i + 1 < close && toks[i + 1].is_punct('[') {
            i = matching(toks, i + 1, '[', ']') + 1;
            continue;
        }
        if toks[i].is_ident("pub") {
            i += 1;
            if i < close && toks[i].is_punct('(') {
                i = matching(toks, i, '(', ')') + 1;
            }
            continue;
        }
        let Some(name) = toks[i].ident().map(str::to_string) else {
            i += 1;
            continue;
        };
        let line = toks[i].line;
        i += 1;
        if i >= close || !toks[i].is_punct(':') || is_path_sep(toks, i) {
            continue;
        }
        i += 1;
        // Type tokens until the field-separating `,` at bracket depth 0.
        let mut ty = Vec::new();
        let mut depth = 0i64;
        while i < close {
            match &toks[i].kind {
                TokKind::Punct('<') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct('>') | TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct(',') if depth <= 0 => break,
                TokKind::Ident(s) => ty.push(s.clone()),
                _ => {}
            }
            i += 1;
        }
        out.push(FieldDecl { name, line, ty });
        if i < close && toks[i].is_punct(',') {
            i += 1;
        }
    }
    close + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::scrub::scrub;

    fn map(src: &str) -> FileMap {
        parse(&lex(&scrub(src).text).toks)
    }

    #[test]
    fn use_groups_and_aliases_flatten() {
        let m = map("use std::time::{Instant as Clock, Duration};\npub use smart_trace as trace;\nuse std::collections::*;\n");
        assert_eq!(m.uses.len(), 4);
        assert_eq!(m.uses[0].path, vec!["std", "time", "Instant"]);
        assert_eq!(m.uses[0].alias.as_deref(), Some("Clock"));
        assert_eq!(m.uses[0].local_name(), Some("Clock"));
        assert_eq!(m.uses[1].path, vec!["std", "time", "Duration"]);
        assert_eq!(m.uses[1].alias, None);
        assert!(m.uses[2].is_pub);
        assert_eq!(m.uses[2].path, vec!["smart_trace"]);
        assert!(m.uses[3].glob);
        assert_eq!(m.uses[3].path, vec!["std", "collections"]);
    }

    #[test]
    fn use_group_self_keeps_the_prefix_path() {
        let m = map("use std::sync::{self, Mutex};\n");
        assert_eq!(m.uses[0].path, vec!["std", "sync"]);
        assert_eq!(m.uses[1].path, vec!["std", "sync", "Mutex"]);
    }

    #[test]
    fn nested_use_groups() {
        let m = map("use a::{b::{c as d, e}, f};\n");
        let paths: Vec<Vec<&str>> = m
            .uses
            .iter()
            .map(|u| u.path.iter().map(|s| s.as_str()).collect())
            .collect();
        assert_eq!(
            paths,
            vec![vec!["a", "b", "c"], vec!["a", "b", "e"], vec!["a", "f"]]
        );
        assert_eq!(m.uses[0].alias.as_deref(), Some("d"));
    }

    #[test]
    fn fns_get_bodies_rets_and_impl_types() {
        let src = "\
impl TimerWheel {
    pub(crate) fn new() -> Self {
        let x = 1;
        x;
    }
    fn tick(&mut self) { }
}
fn free() -> Result<u32, Error> { Ok(0) }
";
        let m = map(src);
        assert_eq!(m.fns.len(), 3);
        let new = &m.fns[0];
        assert_eq!(new.name, "new");
        assert_eq!(new.ret, vec!["Self"]);
        assert_eq!(new.impl_type.as_deref(), Some("TimerWheel"));
        assert!(new.is_constructor());
        let tick = &m.fns[1];
        assert!(!tick.is_constructor());
        assert!(tick.body.is_some());
        let free = &m.fns[2];
        assert_eq!(free.ret, vec!["Result", "u32", "Error"]);
        assert_eq!(free.impl_type, None);
    }

    #[test]
    fn trait_impl_records_the_self_type() {
        let m = map("impl Default for DoorbellTable { fn default() -> Self { todo() } }");
        assert_eq!(m.fns[0].impl_type.as_deref(), Some("DoorbellTable"));
        assert!(m.fns[0].is_constructor());
    }

    #[test]
    fn struct_fields_capture_type_idents() {
        let m = map("struct Lru<K> { map: HashMap<K, usize>, slab: Vec<Node<K>>, cap: usize }");
        let f: Vec<(&str, Vec<&str>)> = m
            .fields
            .iter()
            .map(|f| {
                (
                    f.name.as_str(),
                    f.ty.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
                )
            })
            .collect();
        assert_eq!(
            f,
            vec![
                ("map", vec!["HashMap", "K", "usize"]),
                ("slab", vec!["Vec", "Node", "K"]),
                ("cap", vec!["usize"]),
            ]
        );
    }

    #[test]
    fn enclosing_fn_finds_the_innermost_body() {
        let src = "fn outer() { fn inner() { mark(); } }";
        let m = map(src);
        let toks = lex(&scrub(src).text).toks;
        let mark = toks.iter().position(|t| t.is_ident("mark")).unwrap();
        assert_eq!(m.enclosing_fn(mark).unwrap().name, "inner");
    }

    #[test]
    fn type_decls_cover_structs_and_enums() {
        let m = map("pub struct Doorbell { pub idx: u32 }\nenum WrState { Posted, Done }\npub struct Unit;\n");
        let names: Vec<&str> = m.types.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["Doorbell", "WrState", "Unit"]);
        assert_eq!(m.types[1].line, 2);
    }

    #[test]
    fn constructor_heuristic_covers_named_returns() {
        let m = map("impl Simulation { pub fn with_policy(seed: u64) -> Simulation { x } }");
        assert!(m.fns[0].is_constructor(), "returns the impl type by name");
    }
}
