//! The pre-v2 line engine, preserved verbatim for equivalence testing.
//!
//! Before the token/scope engine ([`crate::lex`], [`crate::items`],
//! [`crate::resolve`]) existed, every code rule pattern-matched directly
//! on whitespace-condensed scrubbed lines. This module keeps that engine
//! alive — same matching, same line handling, same quirks — so
//! `tests/engine_equivalence.rs` can prove the re-hosted rules report
//! the same findings on the real tree (and that the only differences on
//! any tree are the documented, deliberate ones: the token engine sees
//! multi-line guard acquisitions the line engine missed, and exempts
//! constructor bodies from `hot-path-alloc` where the line engine needed
//! pragmas).
//!
//! The per-line matchers ([`rules::wall_clock_hit`] &c.) and message
//! builders ([`rules::msg`]) are shared with the live engine, so a
//! finding's wording can never drift between the two: only the *hosting*
//! differs. Nothing here runs in the normal lint pass.

use crate::rules::{self, diag, fallible_sinks, msg, Diagnostic, SourceFile, HOT_PATHS};

/// Pre-refactor condensed projection: each scrubbed line with its
/// whitespace stripped, computed by char-filtering the scrubbed text
/// (the token engine builds the same projection during lexing; the two
/// are asserted equal in `lex::tests::projection_matches_char_condense`).
fn condensed_lines(file: &SourceFile) -> Vec<(usize, String)> {
    file.scrubbed
        .text
        .lines()
        .enumerate()
        .map(|(i, l)| {
            (
                i + 1,
                l.chars().filter(|c| !c.is_whitespace()).collect::<String>(),
            )
        })
        .collect()
}

pub fn wall_clock(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    for (line, l) in condensed_lines(file) {
        if let Some(pat) = rules::wall_clock_hit(&l) {
            diag(file, line, "wall-clock", msg::wall_clock(pat), out);
        }
    }
}

pub fn os_concurrency(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    for (line, l) in condensed_lines(file) {
        if let Some(pat) = rules::os_concurrency_hit(&l) {
            diag(file, line, "os-concurrency", msg::os_concurrency(pat), out);
        }
    }
}

pub fn unordered_iter(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    for (line, l) in condensed_lines(file) {
        if let Some(pat) = rules::unordered_iter_hit(&l) {
            diag(file, line, "unordered-iter", msg::unordered_iter(pat), out);
        }
    }
}

pub fn unseeded_rng(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (line, l) in condensed_lines(file) {
        if let Some(pat) = rules::unseeded_rng_hit(&l) {
            diag(file, line, "unseeded-rng", msg::unseeded_rng(pat), out);
        }
    }
}

/// Extracts the binding name from a condensed `let NAME = …` line, or
/// `None` for patterns, `_`-discards and plain expression statements.
fn let_binding(l: &str) -> Option<String> {
    let rest = l.strip_prefix("let")?;
    let rest = rest.strip_prefix("mut").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name == "_" || !rest[name.len()..].starts_with(['=', ':']) {
        return None;
    }
    Some(name)
}

/// Line-hosted `await-holding-guard`: brace depth is tallied per line
/// (`depth_after`), so an acquisition split across lines — `let g =
/// sem\n.acquire_guard(id)\n.await;` — never binds a guard here. The
/// token engine tracks those; the equivalence test allows them as
/// new-engine-only findings.
pub fn await_holding_guard(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    struct LiveGuard {
        name: String,
        depth: i32,
        line: usize,
    }
    let mut depth: i32 = 0;
    let mut guards: Vec<LiveGuard> = Vec::new();
    for (line, l) in condensed_lines(file) {
        let depth_after = depth + l.matches('{').count() as i32 - l.matches('}').count() as i32;
        // Explicit release ends the hold.
        guards.retain(|g| {
            !(l.contains(&format!("drop({})", g.name))
                || l.contains(&format!("{}.release(", g.name)))
        });
        let acquires = l.contains(".acquire_guard(") || l.contains(".enter_as(");
        if acquires {
            // The acquiring line's own `.await` is the acquisition
            // itself, never a held-across suspension.
            if let Some(name) = let_binding(&l) {
                guards.push(LiveGuard {
                    name,
                    depth: depth_after,
                    line,
                });
            }
        } else if l.contains(".await") {
            if let Some(g) = guards.last() {
                diag(
                    file,
                    line,
                    "await-holding-guard",
                    msg::await_holding_guard(&g.name, g.line),
                    out,
                );
            }
        }
        depth = depth_after;
        // Scope exit drops whatever is still bound inside it.
        guards.retain(|g| g.depth <= depth);
    }
}

pub fn rc_identity(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    for (line, l) in condensed_lines(file) {
        if let Some(pat) = rules::rc_identity_hit(&l) {
            diag(file, line, "rc-identity", msg::rc_identity(pat), out);
        }
    }
}

pub fn fallible_unhandled(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !file.is_sim_src() {
        return;
    }
    let lines = condensed_lines(file);
    for (line, sink, verb) in fallible_sinks(lines.iter().map(|(n, l)| (*n, l.as_str()))) {
        diag(
            file,
            line,
            "fallible-unhandled",
            msg::fallible_unhandled(sink, verb),
            out,
        );
    }
}

/// Line-hosted `hot-path-alloc`: no constructor exemption — every match
/// in a hot-path file fires, construction-time or not, and the
/// construction-time ones needed pragmas. The token engine knows which
/// fn body a line sits in and skips constructors.
pub fn hot_path_alloc(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !HOT_PATHS.contains(&file.rel_str().as_str()) {
        return;
    }
    for (line, l) in condensed_lines(file) {
        if let Some(pat) = rules::hot_path_alloc_hit(&l) {
            diag(file, line, "hot-path-alloc", msg::hot_path_alloc(pat), out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sim_file(src: &str) -> SourceFile {
        SourceFile::new(PathBuf::from("crates/rt/src/x.rs"), src)
    }

    #[test]
    fn legacy_let_binding_parses_condensed_lets() {
        assert_eq!(let_binding("letg=sem.acquire_guard(1);"), Some("g".into()));
        assert_eq!(
            let_binding("letmutg=sem.acquire_guard(1);"),
            Some("g".into())
        );
        assert_eq!(let_binding("let_=sem.acquire_guard(1);"), None);
        assert_eq!(let_binding("let(a,b)=f();"), None);
        assert_eq!(let_binding("sem.acquire_guard(1);"), None);
    }

    #[test]
    fn legacy_misses_multiline_acquisition() {
        // Acquisition split across lines: the line engine never binds the
        // guard, so the later `.await` passes. (The token engine flags
        // this — see rules::tests::guard_rule_tracks_multiline_acquire.)
        let src = "async fn f(sem: &Semaphore) {\n    let g = sem\n        .acquire_guard(1)\n        .await;\n    other().await;\n}\n";
        let mut out = Vec::new();
        await_holding_guard(&sim_file(src), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn legacy_flags_same_line_acquisition() {
        let src = "async fn f(sem: &Semaphore) {\n    let g = sem.acquire_guard(1).await;\n    other().await;\n}\n";
        let mut out = Vec::new();
        await_holding_guard(&sim_file(src), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn legacy_hot_path_alloc_has_no_constructor_exemption() {
        let src = "impl Slab {\n    fn new() -> Self {\n        let v = Vec::new();\n        Slab { v }\n    }\n}\n";
        let file = SourceFile::new(PathBuf::from("crates/rt/src/wheel.rs"), src);
        let mut out = Vec::new();
        hot_path_alloc(&file, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 3);
    }
}
