//! `smart-lint` — workspace determinism & calibration-drift static
//! analysis for the SMART reproduction.
//!
//! Every figure this repo reproduces rests on the claim that the
//! discrete-event simulation is deterministic from a single seed. This
//! crate mechanically enforces the invariants behind that claim over all
//! workspace `.rs` sources plus DESIGN.md, with zero dependencies:
//!
//! | rule | enforces |
//! |---|---|
//! | `wall-clock` | no `Instant::now`/`SystemTime` in sim crates |
//! | `os-concurrency` | no OS threads / blocking sync in sim crates |
//! | `unordered-iter` | no `HashMap`/`HashSet` in non-test sim code |
//! | `unseeded-rng` | no `thread_rng`/`from_entropy`/`OsRng` anywhere |
//! | `await-holding-guard` | no `.await` while a probed lock guard is bound in sim crates |
//! | `rc-identity` | no `Rc::as_ptr`/`Rc::ptr_eq` identity keys in sim crates |
//! | `fallible-unhandled` | no `.unwrap()`/`.expect()` on fallible `try_*` results in sim crates |
//! | `hot-path-alloc` | no `format!`/`to_string`/`Vec::new` in per-event hot-path files |
//! | `calibration-drift` | DESIGN.md §4 constants match config defaults |
//! | `bench-index-drift` | DESIGN.md §3 bench targets exist on disk |
//!
//! False positives are silenced inline with `// lint:allow(<rule>)`
//! (covers that line and the next) or `// lint:allow-file(<rule>)`
//! (covers the file); both should carry a rationale.
//!
//! Run it with `cargo run -p smart-lint` (non-zero exit on violations);
//! `tests/lint_workspace.rs` wires the same pass into `cargo test`.

pub mod rules;
pub mod scrub;

use std::fs;
use std::path::{Path, PathBuf};

pub use rules::{Diagnostic, SourceFile};

/// Directories never scanned: build output, VCS state, CSV dumps and the
/// lint's own deliberately-bad fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "bench_out", "fixtures"];

/// Recursively collects every `.rs` file under `root`, as sorted
/// root-relative paths (sorted so diagnostics are deterministic).
fn collect_rs(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                found.push(
                    path.strip_prefix(root)
                        .expect("walk stays under root")
                        .to_path_buf(),
                );
            }
        }
    }
    found.sort();
    found
}

/// Loads and scrubs one workspace source.
fn load(root: &Path, rel: &Path) -> Option<SourceFile> {
    let src = fs::read_to_string(root.join(rel)).ok()?;
    Some(SourceFile {
        rel: rel.to_path_buf(),
        scrubbed: scrub::scrub(&src),
    })
}

/// Runs the whole lint pass over the workspace at `root`.
///
/// Diagnostics come back sorted by path and line. An unreadable
/// DESIGN.md or config source is itself a diagnostic — the pass must
/// never silently skip the files it exists to check.
pub fn run_lint(root: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rel in collect_rs(root) {
        let Some(file) = load(root, &rel) else {
            continue;
        };
        rules::wall_clock(&file, &mut out);
        rules::os_concurrency(&file, &mut out);
        rules::unordered_iter(&file, &mut out);
        rules::unseeded_rng(&file, &mut out);
        rules::await_holding_guard(&file, &mut out);
        rules::rc_identity(&file, &mut out);
        rules::fallible_unhandled(&file, &mut out);
        rules::hot_path_alloc(&file, &mut out);
    }

    let design_rel = Path::new("DESIGN.md");
    match fs::read_to_string(root.join(design_rel)) {
        Ok(design) => {
            let rnic_cfg = load(root, Path::new("crates/rnic/src/config.rs"));
            let core_cfg = load(root, Path::new("crates/core/src/config.rs"));
            match (rnic_cfg, core_cfg) {
                (Some(rnic_cfg), Some(core_cfg)) => {
                    rules::calibration_drift(design_rel, &design, &rnic_cfg, &core_cfg, &mut out);
                }
                _ => out.push(Diagnostic {
                    path: design_rel.to_path_buf(),
                    line: 1,
                    rule: "calibration-drift",
                    message: "missing crates/rnic/src/config.rs or crates/core/src/config.rs"
                        .into(),
                }),
            }
            rules::bench_index_drift(root, design_rel, &design, &mut out);
        }
        Err(_) => out.push(Diagnostic {
            path: design_rel.to_path_buf(),
            line: 1,
            rule: "calibration-drift",
            message: "DESIGN.md not found — calibration cannot be checked".into(),
        }),
    }

    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_dirs_cover_fixtures() {
        assert!(SKIP_DIRS.contains(&"fixtures"));
        assert!(SKIP_DIRS.contains(&"target"));
    }
}
