//! `smart-lint` — workspace determinism & calibration-drift static
//! analysis for the SMART reproduction.
//!
//! Every figure this repo reproduces rests on the claim that the
//! discrete-event simulation is deterministic from a single seed. This
//! crate mechanically enforces the invariants behind that claim over all
//! workspace `.rs` sources plus DESIGN.md, with zero dependencies.
//!
//! Sources pass through three layers before any rule runs: the scrubber
//! ([`scrub`]) blanks comment/literal contents keeping line structure;
//! the lexer ([`lex`]) turns the scrubbed text into a token stream and
//! the per-line condensed projection; the item mapper ([`items`]) finds
//! `use` declarations, fn items with brace-matched body spans, and
//! struct fields, which [`resolve`] turns into alias resolution and
//! scoped `let`-binding tracking. Pattern rules match the projection;
//! structural rules walk the tokens and items; the `smart-flow` pass
//! ([`flow`]) builds a workspace call graph on top and infers
//! per-function effect signatures ([`effects`]) to a fixed point.
//! `tests/golden_findings.rs` pins the full raw finding set on the real
//! tree against a committed snapshot.
//!
//! | rule | enforces |
//! |---|---|
//! | `wall-clock` | no `Instant::now`/`SystemTime` in sim crates |
//! | `os-concurrency` | no OS threads / blocking sync in sim crates |
//! | `unordered-iter` | no `HashMap`/`HashSet` in non-test sim code |
//! | `unseeded-rng` | no `thread_rng`/`from_entropy`/`OsRng` anywhere |
//! | `await-holding-guard` | no `.await` while a probed lock guard is bound in sim crates |
//! | `rc-identity` | no `Rc::as_ptr`/`Rc::ptr_eq` identity keys in sim crates |
//! | `fallible-unhandled` | no `.unwrap()`/`.expect()` on fallible `try_*` results in sim crates |
//! | `hot-path-alloc` | no `format!`/`to_string`/`Vec::new` in per-event hot-path files (constructors exempt) |
//! | `alias-evasion` | no `use … as …` renames that hide banned types from the pattern rules |
//! | `unordered-iter-binding` | no iterating a binding whose declared type is an aliased `HashMap`/`HashSet` |
//! | `layering` | crate deps follow the tier order trace < rt < rnic < core < apps < check/fault < bench |
//! | `panic-in-recovery` | no `unwrap`/`expect`/`panic!`/indexing on `try_*` recovery paths in `core` |
//! | `cross-domain-shared-state` | no interior-mutable state shared across scheduling domains outside the fabric |
//! | `rc-escape` | no `Rc` handle to another domain's state captured across a spawn boundary |
//! | `effect-drift` | inferred effect signatures of pinned entry points match `crates/lint/EFFECTS.json` |
//! | `calibration-drift` | DESIGN.md §4 constants match config defaults |
//! | `bench-index-drift` | DESIGN.md §3 bench targets exist on disk |
//!
//! False positives are silenced inline with `// lint:allow(<rule>)`
//! (covers that line and the next) or `// lint:allow-file(<rule>)`
//! (covers the file); both should carry a rationale. CI gates the
//! pragma count ([`count_pragmas`]) against a committed budget so the
//! suppression count only ever shrinks.
//!
//! Run it with `cargo run -p smart-lint` (non-zero exit on violations);
//! `--format=json` emits one JSON object per finding, `--format=github`
//! emits workflow error annotations, `--baseline <file>` filters out
//! findings recorded in a previous JSON run, and `--effects` prints the
//! inferred effect table (`--effects-out <dir>` additionally writes the
//! call-graph and effects JSONL artifacts; `--update-effects` rewrites
//! the `EFFECTS.json` baseline from the current tree).
//! `tests/lint_workspace.rs` wires the same pass into `cargo test`.

pub mod effects;
pub mod flow;
pub mod items;
pub mod lex;
pub mod resolve;
pub mod rules;
pub mod scrub;

use std::fs;
use std::path::{Path, PathBuf};

pub use rules::{Diagnostic, SourceFile, RULES};

/// Directories never scanned: build output, VCS state, CSV dumps and the
/// lint's own deliberately-bad fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "bench_out", "fixtures"];

/// Recursively collects every `.rs` file under `root`, as sorted
/// root-relative paths (sorted so diagnostics are deterministic).
fn collect_rs(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                found.push(
                    path.strip_prefix(root)
                        .expect("walk stays under root")
                        .to_path_buf(),
                );
            }
        }
    }
    found.sort();
    found
}

/// Loads, scrubs, lexes and item-maps one workspace source.
fn load(root: &Path, rel: &Path) -> Option<SourceFile> {
    let src = fs::read_to_string(root.join(rel)).ok()?;
    Some(SourceFile::new(rel.to_path_buf(), &src))
}

/// Loads every workspace source under `root`.
fn load_all(root: &Path) -> Vec<SourceFile> {
    collect_rs(root)
        .iter()
        .filter_map(|rel| load(root, rel))
        .collect()
}

/// The DESIGN.md doc-drift rules, shared by both engines.
fn design_rules(root: &Path, out: &mut Vec<Diagnostic>) {
    let design_rel = Path::new("DESIGN.md");
    match fs::read_to_string(root.join(design_rel)) {
        Ok(design) => {
            let rnic_cfg = load(root, Path::new("crates/rnic/src/config.rs"));
            let core_cfg = load(root, Path::new("crates/core/src/config.rs"));
            match (rnic_cfg, core_cfg) {
                (Some(rnic_cfg), Some(core_cfg)) => {
                    rules::calibration_drift(design_rel, &design, &rnic_cfg, &core_cfg, out);
                }
                _ => out.push(Diagnostic {
                    path: design_rel.to_path_buf(),
                    line: 1,
                    rule: "calibration-drift",
                    message: "missing crates/rnic/src/config.rs or crates/core/src/config.rs"
                        .into(),
                    suppressed: false,
                }),
            }
            rules::bench_index_drift(root, design_rel, &design, out);
        }
        Err(_) => out.push(Diagnostic {
            path: design_rel.to_path_buf(),
            line: 1,
            rule: "calibration-drift",
            message: "DESIGN.md not found — calibration cannot be checked".into(),
            suppressed: false,
        }),
    }
}

/// Runs every rule over the workspace at `root` and keeps
/// pragma-suppressed findings in the stream (`Diagnostic::suppressed`).
///
/// Diagnostics come back sorted by path and line. An unreadable
/// DESIGN.md or config source is itself a diagnostic — the pass must
/// never silently skip the files it exists to check.
pub fn run_lint_raw(root: &Path) -> Vec<Diagnostic> {
    let files = load_all(root);
    let mut out = Vec::new();
    for file in &files {
        rules::wall_clock(file, &mut out);
        rules::os_concurrency(file, &mut out);
        rules::unordered_iter(file, &mut out);
        rules::unseeded_rng(file, &mut out);
        rules::await_holding_guard(file, &mut out);
        rules::rc_identity(file, &mut out);
        rules::fallible_unhandled(file, &mut out);
        rules::hot_path_alloc(file, &mut out);
        rules::alias_evasion(file, &mut out);
        rules::unordered_iter_binding(file, &mut out);
    }
    rules::panic_in_recovery(&files, &mut out);
    rules::layering(root, &files, &mut out);
    flow::flow_pass(root, &files, &mut out);
    design_rules(root, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// Runs the whole lint pass over the workspace at `root`, dropping
/// pragma-suppressed findings — what the CLI and the tier-1 gates report.
pub fn run_lint(root: &Path) -> Vec<Diagnostic> {
    let mut out = run_lint_raw(root);
    out.retain(|d| !d.suppressed);
    out
}

/// Builds the `smart-flow` effect graph over the workspace at `root`
/// (for `--effects` reporting and the CI artifacts).
pub fn effect_graph(root: &Path) -> flow::FlowGraph {
    flow::build_graph(&load_all(root))
}

/// Counts suppression pragmas (`lint:allow` / `lint:allow-file`) naming
/// a known rule in `crates/*/src` trees under `root`. CI gates this
/// number against a committed budget so the suppression count only ever
/// shrinks — a pragma deleted is an invariant the engine now understands
/// well enough to check for real.
pub fn count_pragmas(root: &Path) -> usize {
    collect_rs(root)
        .iter()
        .filter(|rel| {
            let s = rel.to_string_lossy().replace('\\', "/");
            s.starts_with("crates/") && s.split('/').nth(2) == Some("src")
        })
        .filter_map(|rel| load(root, rel))
        .map(|f| {
            f.scrubbed
                .allows
                .iter()
                .filter(|a| RULES.contains(&a.rule.as_str()))
                .count()
        })
        .sum()
}

/// Serializes one diagnostic as a single-line JSON object with `path`,
/// `line`, `rule` and `message` fields — the `--format=json` /
/// `--baseline` interchange format.
pub fn to_json(d: &Diagnostic) -> String {
    format!(
        "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
        json_escape(&d.path.to_string_lossy().replace('\\', "/")),
        d.line,
        json_escape(d.rule),
        json_escape(&d.message)
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_dirs_cover_fixtures() {
        assert!(SKIP_DIRS.contains(&"fixtures"));
        assert!(SKIP_DIRS.contains(&"target"));
    }

    #[test]
    fn json_serialization_escapes_and_roundtrips_fields() {
        let d = Diagnostic {
            path: PathBuf::from("crates/rt/src/a.rs"),
            line: 7,
            rule: "wall-clock",
            message: "has \"quotes\" and\nnewline".into(),
            suppressed: false,
        };
        assert_eq!(
            to_json(&d),
            "{\"path\":\"crates/rt/src/a.rs\",\"line\":7,\"rule\":\"wall-clock\",\
             \"message\":\"has \\\"quotes\\\" and\\nnewline\"}"
        );
    }

    #[test]
    fn pragma_counter_ignores_unknown_rules_and_non_src_paths() {
        let dir = std::env::temp_dir().join(format!("lint_pragma_{}", std::process::id()));
        let src_dir = dir.join("crates/rt/src");
        let test_dir = dir.join("crates/rt/tests");
        fs::create_dir_all(&src_dir).unwrap();
        fs::create_dir_all(&test_dir).unwrap();
        // Pragma text assembled at runtime so this file contributes
        // nothing to the CI grep gate over `crates/*/src`.
        let allow = |rule: &str| format!("lint:{}({rule})", "allow");
        fs::write(
            src_dir.join("a.rs"),
            format!(
                "// {} reason\n// {}\n",
                allow("wall-clock"),
                allow("not-a-rule")
            ),
        )
        .unwrap();
        fs::write(
            test_dir.join("b.rs"),
            format!("// {}\n", allow("wall-clock")),
        )
        .unwrap();
        assert_eq!(count_pragmas(&dir), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
