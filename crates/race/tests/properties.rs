//! Randomized (seeded, deterministic) tests for the hash-table layout and
//! full-table model equivalence; the offline replacement for the earlier
//! proptest suite.

use std::collections::HashMap;
use std::rc::Rc;

use smart::{SmartConfig, SmartContext};
use smart_race::layout::{decode_block, encode_block, hash_key, Slot, MAX_BLOCK_BYTES};
use smart_race::{RaceConfig, RaceHashTable};
use smart_rnic::{Cluster, ClusterConfig};
use smart_rt::rng::SimRng;
use smart_rt::Simulation;

fn rand_bytes(rng: &mut SimRng, max_len: u64) -> Vec<u8> {
    let len = rng.next_u64_below(max_len) as usize;
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

/// Slot encoding is a lossless round-trip over its full field ranges.
#[test]
fn slot_roundtrip() {
    let mut rng = SimRng::new(0x5107);
    for _ in 0..512 {
        let fp = rng.next_u64() as u8;
        let units = rng.gen_range(1, 256) as usize;
        let off = rng.next_u64_below(1 << 48);
        let s = Slot::encode(fp, units * 8, off);
        assert_eq!(s.fp(), fp);
        assert_eq!(s.block_bytes(), units * 8);
        assert_eq!(s.offset(), off);
        assert!(!s.is_empty() || (fp == 0 && units == 0 && off == 0));
    }
}

/// Key/value blocks round-trip for arbitrary contents within the
/// encodable size.
#[test]
fn block_roundtrip() {
    let mut rng = SimRng::new(0xB10C);
    for _ in 0..256 {
        let key = rand_bytes(&mut rng, 128);
        let value = rand_bytes(&mut rng, 512);
        let buf = encode_block(&key, &value);
        assert!(buf.len() <= MAX_BLOCK_BYTES);
        assert_eq!(buf.len() % 8, 0);
        let (k, v) = decode_block(&buf).expect("valid");
        assert_eq!(k, &key[..]);
        assert_eq!(v, &value[..]);
    }
}

/// Fingerprints never collide with the empty-slot sentinel and the
/// two bucket hashes are independent of each other.
#[test]
fn hashes_well_formed() {
    let mut rng = SimRng::new(0x4A54);
    for _ in 0..512 {
        let key = rand_bytes(&mut rng, 64);
        let kh = hash_key(&key);
        assert_ne!(kh.fp, 0);
        // h1 == h2 would make the "two choices" degenerate; allow the
        // astronomically unlikely collision only for the empty key.
        if key.len() > 1 {
            assert_ne!(kh.h1, kh.h2);
        }
    }
}

/// A random single-client operation sequence over the RDMA path
/// matches a HashMap model (smaller/faster variant of the fixed-seed
/// integration test, across arbitrary seeds and sequences).
#[test]
fn table_matches_hashmap() {
    let mut case_rng = SimRng::new(0x7AB1);
    for _ in 0..12 {
        let seed = case_rng.next_u64();
        let n_ops = case_rng.gen_range(1, 60);
        let ops: Vec<(u8, u64, u64)> = (0..n_ops)
            .map(|_| {
                (
                    case_rng.next_u64_below(3) as u8,
                    case_rng.next_u64_below(24),
                    case_rng.next_u64(),
                )
            })
            .collect();
        let mut sim = Simulation::new(seed);
        let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
        let table = RaceHashTable::create(
            cluster.blades(),
            RaceConfig {
                buckets_per_subtable: 64,
                initial_depth: 1,
                ..Default::default()
            },
        );
        let ctx = SmartContext::new(
            cluster.compute(0),
            cluster.blades(),
            SmartConfig::smart_full(1),
        );
        let thread = ctx.create_thread();
        let t = Rc::clone(&table);
        sim.block_on(async move {
            let coro = thread.coroutine();
            let mut model: HashMap<u64, u64> = HashMap::new();
            for (op, key, val) in ops {
                let kb = key.to_le_bytes();
                match op {
                    0 => {
                        t.insert(&coro, &kb, &val.to_le_bytes())
                            .await
                            .expect("insert");
                        model.insert(key, val);
                    }
                    1 => {
                        let present = t.remove(&coro, &kb).await.expect("remove");
                        assert_eq!(present, model.remove(&key).is_some());
                    }
                    _ => {
                        let got = t
                            .get(&coro, &kb)
                            .await
                            .map(|v| u64::from_le_bytes(v.try_into().expect("8B")));
                        assert_eq!(got, model.get(&key).copied());
                    }
                }
            }
        });
    }
}
