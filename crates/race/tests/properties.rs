//! Property-based tests for the hash-table layout and full-table model
//! equivalence.

use std::collections::HashMap;
use std::rc::Rc;

use proptest::prelude::*;
use smart::{SmartConfig, SmartContext};
use smart_race::layout::{decode_block, encode_block, hash_key, Slot, MAX_BLOCK_BYTES};
use smart_race::{RaceConfig, RaceHashTable};
use smart_rnic::{Cluster, ClusterConfig};
use smart_rt::Simulation;

proptest! {
    /// Slot encoding is a lossless round-trip over its full field ranges.
    #[test]
    fn slot_roundtrip(fp in any::<u8>(), units in 1usize..=255, off in 0u64..(1 << 48)) {
        let s = Slot::encode(fp, units * 8, off);
        prop_assert_eq!(s.fp(), fp);
        prop_assert_eq!(s.block_bytes(), units * 8);
        prop_assert_eq!(s.offset(), off);
        prop_assert!(!s.is_empty() || (fp == 0 && units == 0 && off == 0));
    }

    /// Key/value blocks round-trip for arbitrary contents within the
    /// encodable size.
    #[test]
    fn block_roundtrip(
        key in prop::collection::vec(any::<u8>(), 0..128),
        value in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let buf = encode_block(&key, &value);
        prop_assert!(buf.len() <= MAX_BLOCK_BYTES);
        prop_assert_eq!(buf.len() % 8, 0);
        let (k, v) = decode_block(&buf).expect("valid");
        prop_assert_eq!(k, &key[..]);
        prop_assert_eq!(v, &value[..]);
    }

    /// Fingerprints never collide with the empty-slot sentinel and the
    /// two bucket hashes are independent of each other.
    #[test]
    fn hashes_well_formed(key in prop::collection::vec(any::<u8>(), 0..64)) {
        let kh = hash_key(&key);
        prop_assert_ne!(kh.fp, 0);
        // h1 == h2 would make the "two choices" degenerate; allow the
        // astronomically unlikely collision only for the empty key.
        if key.len() > 1 {
            prop_assert_ne!(kh.h1, kh.h2);
        }
    }

    /// A random single-client operation sequence over the RDMA path
    /// matches a HashMap model (smaller/faster variant of the fixed-seed
    /// integration test, across arbitrary seeds and sequences).
    #[test]
    fn table_matches_hashmap(
        ops in prop::collection::vec((0u8..3, 0u64..24, any::<u64>()), 1..60),
        seed in any::<u64>(),
    ) {
        let mut sim = Simulation::new(seed);
        let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
        let table = RaceHashTable::create(
            cluster.blades(),
            RaceConfig { buckets_per_subtable: 64, initial_depth: 1, ..Default::default() },
        );
        let ctx = SmartContext::new(
            cluster.compute(0),
            cluster.blades(),
            SmartConfig::smart_full(1),
        );
        let thread = ctx.create_thread();
        let t = Rc::clone(&table);
        sim.block_on(async move {
            let coro = thread.coroutine();
            let mut model: HashMap<u64, u64> = HashMap::new();
            for (op, key, val) in ops {
                let kb = key.to_le_bytes();
                match op {
                    0 => {
                        t.insert(&coro, &kb, &val.to_le_bytes()).await.expect("insert");
                        model.insert(key, val);
                    }
                    1 => {
                        let present = t.remove(&coro, &kb).await.expect("remove");
                        assert_eq!(present, model.remove(&key).is_some());
                    }
                    _ => {
                        let got = t.get(&coro, &kb).await.map(|v| {
                            u64::from_le_bytes(v.try_into().expect("8B"))
                        });
                        assert_eq!(got, model.get(&key).copied());
                    }
                }
            }
        });
    }
}
