//! Functional and concurrency tests for the RACE hash table over the
//! simulated RNIC.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use smart::{QpPolicy, SmartConfig, SmartContext};
use smart_race::{RaceConfig, RaceError, RaceHashTable};
use smart_rnic::{Cluster, ClusterConfig};
use smart_rt::rng::SimRng;
use smart_rt::Simulation;

fn small_cfg() -> RaceConfig {
    RaceConfig {
        buckets_per_subtable: 1 << 8,
        initial_depth: 1,
        ..Default::default()
    }
}

fn setup(
    seed: u64,
    threads: usize,
    smart_cfg: SmartConfig,
) -> (Simulation, Rc<RaceHashTable>, Rc<SmartContext>) {
    let sim = Simulation::new(seed);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    let table = RaceHashTable::create(cluster.blades(), small_cfg());
    let mut cfg = smart_cfg;
    cfg.expected_threads = threads;
    let ctx = SmartContext::new(cluster.compute(0), cluster.blades(), cfg);
    (sim, table, ctx)
}

#[test]
fn load_then_get_over_rdma() {
    let (mut sim, table, ctx) = setup(1, 1, SmartConfig::smart_full(1));
    for k in 0..500u64 {
        table.load(&k.to_le_bytes(), &(k * 3).to_le_bytes());
    }
    let coro = ctx.create_thread().coroutine();
    let t = Rc::clone(&table);
    sim.block_on(async move {
        for k in 0..500u64 {
            let v = t.get(&coro, &k.to_le_bytes()).await.expect("present");
            assert_eq!(v, (k * 3).to_le_bytes());
        }
        assert!(t.get(&coro, b"missing-key").await.is_none());
    });
}

#[test]
fn rdma_insert_then_get() {
    let (mut sim, table, ctx) = setup(2, 1, SmartConfig::smart_full(1));
    let coro = ctx.create_thread().coroutine();
    let t = Rc::clone(&table);
    sim.block_on(async move {
        for k in 1000..1300u64 {
            let retries = t
                .insert(&coro, &k.to_le_bytes(), &k.to_be_bytes())
                .await
                .expect("insert");
            assert_eq!(retries, 0, "no contention with one client");
        }
        for k in 1000..1300u64 {
            let v = t.get(&coro, &k.to_le_bytes()).await.expect("present");
            assert_eq!(v, k.to_be_bytes());
        }
    });
    assert_eq!(table.stats().inserts.get(), 300);
}

#[test]
fn update_changes_value_and_remove_clears() {
    let (mut sim, table, ctx) = setup(3, 1, SmartConfig::smart_full(1));
    table.load(b"k1", b"v1");
    let coro = ctx.create_thread().coroutine();
    let t = Rc::clone(&table);
    sim.block_on(async move {
        t.update(&coro, b"k1", b"v2").await.expect("update");
        assert_eq!(t.get(&coro, b"k1").await.as_deref(), Some(b"v2".as_slice()));
        assert_eq!(
            t.update(&coro, b"nope", b"x").await,
            Err(RaceError::NotFound)
        );
        assert!(t.remove(&coro, b"k1").await.expect("remove"));
        assert!(t.get(&coro, b"k1").await.is_none());
        assert!(!t.remove(&coro, b"k1").await.expect("second remove"));
    });
}

#[test]
fn variable_length_keys_and_values() {
    let (mut sim, table, ctx) = setup(4, 1, SmartConfig::smart_full(1));
    let coro = ctx.create_thread().coroutine();
    let t = Rc::clone(&table);
    sim.block_on(async move {
        let long_val = vec![0xAB; 900];
        t.insert(&coro, b"tiny", &long_val).await.expect("insert");
        t.insert(&coro, b"a-much-longer-key-string", b"v")
            .await
            .expect("insert");
        assert_eq!(t.get(&coro, b"tiny").await.expect("present"), long_val);
        assert_eq!(
            t.get(&coro, b"a-much-longer-key-string").await.as_deref(),
            Some(b"v".as_slice())
        );
    });
}

#[test]
fn table_splits_when_buckets_fill() {
    let sim = Simulation::new(5);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 1));
    let cfg = RaceConfig {
        buckets_per_subtable: 8, // tiny: 64 slots per subtable
        initial_depth: 0,
        ..Default::default()
    };
    let table = RaceHashTable::create(cluster.blades(), cfg);
    assert_eq!(table.subtable_count(), 1);
    for k in 0..2000u64 {
        table.load(&k.to_le_bytes(), &k.to_ne_bytes());
    }
    assert!(
        table.subtable_count() > 8,
        "table must have split repeatedly"
    );
    // Every key still readable after all the splits (host side check).
    let mut sim = sim;
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(1),
    );
    let coro = ctx.create_thread().coroutine();
    let t = Rc::clone(&table);
    sim.block_on(async move {
        for k in (0..2000u64).step_by(37) {
            assert_eq!(
                t.get(&coro, &k.to_le_bytes())
                    .await
                    .expect("present after split"),
                k.to_ne_bytes()
            );
        }
    });
}

#[test]
fn concurrent_updates_to_one_key_converge() {
    let (mut sim, table, ctx) = setup(6, 9, SmartConfig::smart_full(9));
    table.load(b"hot", b"seed");
    let written: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(Vec::new()));
    let mut joins = Vec::new();
    for t in 0..8 {
        let thread = ctx.create_thread();
        let table = Rc::clone(&table);
        let written = Rc::clone(&written);
        joins.push(sim.spawn(async move {
            let coro = thread.coroutine();
            for i in 0..10u32 {
                let val = format!("t{t}-i{i}").into_bytes();
                written.borrow_mut().push(val.clone());
                table.update(&coro, b"hot", &val).await.expect("update");
            }
        }));
    }
    sim.run_for(smart_rt::Duration::from_secs(2));
    for j in &joins {
        assert!(j.is_finished(), "all updaters must finish");
    }
    // The final value must be one that some client actually wrote.
    let coro = ctx.create_thread().coroutine();
    let t = Rc::clone(&table);
    let written2 = Rc::clone(&written);
    let mut sim = sim;
    sim.block_on(async move {
        let v = t.get(&coro, b"hot").await.expect("key still present");
        assert!(
            written2.borrow().contains(&v),
            "final value {:?} was never written",
            String::from_utf8_lossy(&v)
        );
    });
    assert_eq!(table.stats().updates.get(), 80);
}

#[test]
fn high_contention_updates_record_retries() {
    let (mut sim, table, ctx) = setup(7, 16, SmartConfig::baseline(QpPolicy::PerThreadQp, 16));
    table.load(b"hot", b"seed");
    let mut joins = Vec::new();
    for _ in 0..16 {
        let thread = ctx.create_thread();
        let table = Rc::clone(&table);
        joins.push(sim.spawn(async move {
            let coro = thread.coroutine();
            for i in 0..20u32 {
                table
                    .update(&coro, b"hot", &i.to_le_bytes())
                    .await
                    .expect("update");
            }
        }));
    }
    sim.run_for(smart_rt::Duration::from_secs(2));
    for j in &joins {
        assert!(j.is_finished());
    }
    assert!(
        table.stats().cas_retries.get() > 0,
        "16 clients hammering one key must lose some CAS races"
    );
    assert_eq!(table.stats().updates.get(), 16 * 20);
}

#[test]
fn random_ops_match_model_hashmap() {
    let (mut sim, table, ctx) = setup(8, 1, SmartConfig::smart_full(1));
    let coro = ctx.create_thread().coroutine();
    let t = Rc::clone(&table);
    sim.block_on(async move {
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng = SimRng::new(99);
        for step in 0..600 {
            let key = rng.next_u64_below(64);
            let kb = key.to_le_bytes();
            match rng.next_u64_below(4) {
                0 | 1 => {
                    let val = step as u64;
                    t.insert(&coro, &kb, &val.to_le_bytes())
                        .await
                        .expect("insert");
                    model.insert(key, val);
                }
                2 => {
                    let present = t.remove(&coro, &kb).await.expect("remove");
                    assert_eq!(present, model.remove(&key).is_some(), "step {step}");
                }
                _ => {
                    let got = t
                        .get(&coro, &kb)
                        .await
                        .map(|v| u64::from_le_bytes(v.try_into().expect("8-byte value")));
                    assert_eq!(got, model.get(&key).copied(), "step {step}");
                }
            }
        }
    });
}

#[test]
fn get_direct_matches_rdma_get() {
    let (mut sim, table, ctx) = setup(13, 1, SmartConfig::smart_full(1));
    for k in 0..300u64 {
        table.load(&k.to_le_bytes(), &(k * 9).to_le_bytes());
    }
    let coro = ctx.create_thread().coroutine();
    let t = Rc::clone(&table);
    sim.block_on(async move {
        for k in (0..300u64).step_by(17) {
            let rdma = t.get(&coro, &k.to_le_bytes()).await;
            let direct = t.get_direct(&k.to_le_bytes());
            assert_eq!(rdma, direct, "key {k}");
        }
        assert_eq!(t.get_direct(b"missing"), None);
    });
}
