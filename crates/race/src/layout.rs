//! On-blade memory layout: bucket slots and key/value blocks.
//!
//! A slot is one 64-bit word, CAS-able in place (RACE's design):
//!
//! ```text
//!  63      56 55      48 47                                    0
//! +----------+----------+---------------------------------------+
//! | fp (8 b) | len (8 b) |            offset (48 b)             |
//! +----------+----------+---------------------------------------+
//! ```
//!
//! `fp` is a fingerprint of the key (filters bucket scans), `len` the
//! key/value block length in 8-byte units, `offset` the block's location
//! within the subtable's blade. A zero word is an empty slot.
//!
//! A key/value block is `[key_len: u32][val_len: u32][key][value]`,
//! padded to 8 bytes. Blocks are immutable once published: updates write
//! a fresh block and CAS the slot over, so concurrent readers always see
//! a consistent block (stale at worst, never torn).

/// An encoded bucket slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Slot(pub u64);

/// Length of one bucket in bytes (8 slots × 8 B — a single RDMA READ).
pub const BUCKET_BYTES: u64 = (SLOTS_PER_BUCKET as u64) * 8;
/// Slots per bucket.
pub const SLOTS_PER_BUCKET: usize = 8;
/// Maximum encodable block length (8-byte units in an 8-bit field).
pub const MAX_BLOCK_BYTES: usize = 255 * 8;

impl Slot {
    /// The empty slot.
    pub const EMPTY: Slot = Slot(0);

    /// Encodes a slot.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds 48 bits or `block_bytes` exceeds
    /// [`MAX_BLOCK_BYTES`] or is not a multiple of 8.
    pub fn encode(fp: u8, block_bytes: usize, offset: u64) -> Slot {
        assert!(offset < (1 << 48), "offset {offset} exceeds 48 bits");
        assert!(
            block_bytes.is_multiple_of(8),
            "block length must be 8-byte aligned"
        );
        assert!(
            block_bytes <= MAX_BLOCK_BYTES,
            "block of {block_bytes} bytes too large"
        );
        assert!(block_bytes > 0, "block must be non-empty");
        let len_units = (block_bytes / 8) as u64;
        Slot(((fp as u64) << 56) | (len_units << 48) | offset)
    }

    /// Whether the slot is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The fingerprint.
    pub fn fp(self) -> u8 {
        (self.0 >> 56) as u8
    }

    /// Block length in bytes.
    pub fn block_bytes(self) -> usize {
        (((self.0 >> 48) & 0xFF) as usize) * 8
    }

    /// Block offset within the blade.
    pub fn offset(self) -> u64 {
        self.0 & 0xFFFF_FFFF_FFFF
    }
}

/// Hashes for key placement: two independent bucket choices plus a
/// fingerprint, all derived from one 64-bit key-hash pair.
#[derive(Clone, Copy, Debug)]
pub struct KeyHash {
    /// Primary hash: selects the subtable and the first bucket.
    pub h1: u64,
    /// Secondary hash: selects the second bucket.
    pub h2: u64,
    /// 8-bit fingerprint stored in slots.
    pub fp: u8,
}

/// Computes the placement hashes of a key.
pub fn hash_key(key: &[u8]) -> KeyHash {
    let h1 = splitmix_bytes(key, 0x51_7C_C1_B7_27_22_0A_95);
    let h2 = splitmix_bytes(key, 0x2545_F491_4F6C_DD1D);
    let mut fp = (h1 >> 48) as u8;
    if fp == 0 {
        fp = 1; // fp 0 is reserved so an empty slot never matches
    }
    KeyHash { h1, h2, fp }
}

fn splitmix_bytes(bytes: &[u8], seed: u64) -> u64 {
    let mut h = seed ^ (bytes.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for chunk in bytes.chunks(8) {
        let mut v = [0u8; 8];
        v[..chunk.len()].copy_from_slice(chunk);
        let mut z = u64::from_le_bytes(v).wrapping_add(h);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    h
}

/// Serializes a key/value block (8-byte padded).
pub fn encode_block(key: &[u8], value: &[u8]) -> Vec<u8> {
    let raw = 8 + key.len() + value.len();
    let padded = raw.div_ceil(8) * 8;
    let mut buf = Vec::with_capacity(padded);
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
    buf.extend_from_slice(key);
    buf.extend_from_slice(value);
    buf.resize(padded, 0);
    buf
}

/// Parses a key/value block; returns `(key, value)`.
///
/// Returns `None` if the header is inconsistent with the buffer length.
pub fn decode_block(buf: &[u8]) -> Option<(&[u8], &[u8])> {
    if buf.len() < 8 {
        return None;
    }
    let klen = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    let vlen = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")) as usize;
    if 8 + klen + vlen > buf.len() {
        return None;
    }
    Some((&buf[8..8 + klen], &buf[8 + klen..8 + klen + vlen]))
}

/// Decodes a 64-byte bucket into slots.
pub fn decode_bucket(buf: &[u8]) -> [Slot; SLOTS_PER_BUCKET] {
    assert_eq!(
        buf.len() as u64,
        BUCKET_BYTES,
        "bucket must be {BUCKET_BYTES} bytes"
    );
    let mut slots = [Slot::EMPTY; SLOTS_PER_BUCKET];
    for (i, chunk) in buf.chunks_exact(8).enumerate() {
        slots[i] = Slot(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_roundtrip() {
        let s = Slot::encode(0xAB, 48, 0x1234_5678);
        assert_eq!(s.fp(), 0xAB);
        assert_eq!(s.block_bytes(), 48);
        assert_eq!(s.offset(), 0x1234_5678);
        assert!(!s.is_empty());
        assert!(Slot::EMPTY.is_empty());
    }

    #[test]
    #[should_panic(expected = "48 bits")]
    fn slot_rejects_large_offsets() {
        let _ = Slot::encode(1, 8, 1 << 48);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn slot_rejects_unaligned_len() {
        let _ = Slot::encode(1, 13, 0);
    }

    #[test]
    fn hash_fp_is_never_zero() {
        for k in 0..200u64 {
            assert_ne!(hash_key(&k.to_le_bytes()).fp, 0);
        }
    }

    #[test]
    fn hashes_differ_between_keys() {
        let a = hash_key(b"alpha");
        let b = hash_key(b"beta");
        assert_ne!(a.h1, b.h1);
        assert_ne!(a.h2, b.h2);
    }

    #[test]
    fn h1_h2_are_independent() {
        let k = hash_key(b"key");
        assert_ne!(k.h1, k.h2);
    }

    #[test]
    fn block_roundtrip_various_sizes() {
        for (k, v) in [
            (b"k".as_slice(), b"v".as_slice()),
            (b"key-123", b""),
            (b"", b"value"),
        ] {
            let buf = encode_block(k, v);
            assert_eq!(buf.len() % 8, 0);
            let (dk, dv) = decode_block(&buf).expect("valid block");
            assert_eq!((dk, dv), (k, v));
        }
    }

    #[test]
    fn decode_block_rejects_garbage() {
        assert!(decode_block(&[0; 4]).is_none());
        let mut buf = encode_block(b"key", b"value");
        buf[0] = 0xFF; // absurd key length
        assert!(decode_block(&buf).is_none());
    }

    #[test]
    fn bucket_roundtrip() {
        let mut buf = vec![0u8; BUCKET_BYTES as usize];
        let s = Slot::encode(7, 16, 4096);
        buf[16..24].copy_from_slice(&s.0.to_le_bytes());
        let slots = decode_bucket(&buf);
        assert!(slots[0].is_empty());
        assert_eq!(slots[2], s);
    }
}
