//! The RACE-style lock-free disaggregated hash table.
//!
//! Extendible hashing over memory blades, driven entirely by one-sided
//! verbs (READ/WRITE/CAS) issued through [`smart::SmartCoro`]:
//!
//! * **lookup** — READ two candidate buckets (one batch), then READ the
//!   matching key/value block: the paper's "three RDMA READs per lookup";
//! * **insert** — find a free slot, WRITE the block, CAS the slot from
//!   empty; a failed CAS retries with *three more RDMA requests*
//!   (re-read the bucket, re-write the block, CAS again — §3.3);
//! * **update** — WRITE a fresh block and CAS the slot from the old
//!   encoding to the new one; same 3-op retry loop;
//! * **remove** — CAS the slot to zero.
//!
//! The CAS goes through [`SmartCoro::backoff_cas_sync`], so the baseline
//! (conflict avoidance off) behaves like RACE and the SMART-HT refactor
//! is just a configuration change — mirroring the paper's 44-line diff.
//!
//! Simplifications vs. the RACE paper, preserved behaviours noted:
//! the client directory cache is shared (never stale), and subtable
//! splits run atomically host-side during inserts (they are rare and not
//! part of any measured experiment; the per-op RDMA cost model, which is
//! what the SMART paper studies, is unaffected).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use smart::SmartCoro;
use smart_rnic::{CqeError, MemoryBlade, RemoteAddr};
use smart_rt::trace::SyncOp;

use crate::layout::{
    decode_block, decode_bucket, encode_block, hash_key, KeyHash, Slot, BUCKET_BYTES,
    SLOTS_PER_BUCKET,
};
use crate::stats::RaceStats;

/// Hash-table geometry and limits.
#[derive(Clone, Debug)]
pub struct RaceConfig {
    /// Buckets per subtable (power of two).
    pub buckets_per_subtable: usize,
    /// Initial directory depth: the table starts with `2^depth` subtables.
    pub initial_depth: u8,
    /// Size of each key/value allocation chunk carved from a blade.
    pub kv_chunk_bytes: u64,
    /// Retry cap before an operation reports contention failure.
    pub max_retries: u32,
}

impl Default for RaceConfig {
    fn default() -> Self {
        RaceConfig {
            buckets_per_subtable: 1 << 12,
            initial_depth: 2,
            kv_chunk_bytes: 1 << 20,
            max_retries: 4096,
        }
    }
}

/// Errors reported by table operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RaceError {
    /// The key was not present.
    NotFound,
    /// The operation lost the CAS race more than `max_retries` times.
    Contention,
    /// The table cannot grow further (blade memory exhausted).
    Full,
    /// An RDMA fault could not be recovered (permanent error or
    /// exhausted retry budget); carries the final completion error.
    Fault(CqeError),
}

impl std::fmt::Display for RaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaceError::NotFound => write!(f, "key not found"),
            RaceError::Contention => write!(f, "operation exceeded retry limit"),
            RaceError::Full => write!(f, "hash table is full"),
            RaceError::Fault(e) => write!(f, "unrecoverable RDMA fault: {e}"),
        }
    }
}

impl std::error::Error for RaceError {}

struct Subtable {
    blade_idx: usize,
    base: u64,
    local_depth: Cell<u8>,
}

/// The table descriptor shared by all client threads (the client-side
/// directory cache).
pub struct RaceHashTable {
    cfg: RaceConfig,
    blades: Vec<Rc<MemoryBlade>>,
    dir: RefCell<Vec<Rc<Subtable>>>,
    global_depth: Cell<u8>,
    chunks: RefCell<Vec<(u64, u64)>>,
    stats: RaceStats,
}

impl std::fmt::Debug for RaceHashTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaceHashTable")
            .field("global_depth", &self.global_depth.get())
            .field("subtables", &self.dir.borrow().len())
            .finish()
    }
}

impl RaceHashTable {
    /// Creates the table structures on the given blades (the load-phase
    /// setup a real deployment would do through the blade allocator).
    ///
    /// # Panics
    ///
    /// Panics if `blades` is empty or the geometry is not a power of two.
    pub fn create(blades: &[Rc<MemoryBlade>], cfg: RaceConfig) -> Rc<Self> {
        assert!(!blades.is_empty(), "need at least one memory blade");
        assert!(
            cfg.buckets_per_subtable.is_power_of_two(),
            "buckets_per_subtable must be a power of two"
        );
        let table = RaceHashTable {
            cfg,
            blades: blades.to_vec(),
            dir: RefCell::new(Vec::new()),
            global_depth: Cell::new(0),
            chunks: RefCell::new(vec![(0, 0); blades.len()]),
            stats: RaceStats::new(),
        };
        let depth = table.cfg.initial_depth;
        let mut dir = Vec::with_capacity(1 << depth);
        for i in 0..(1usize << depth) {
            dir.push(table.new_subtable(i % table.blades.len(), depth));
        }
        *table.dir.borrow_mut() = dir;
        table.global_depth.set(depth);
        Rc::new(table)
    }

    fn new_subtable(&self, blade_idx: usize, local_depth: u8) -> Rc<Subtable> {
        let bytes = self.cfg.buckets_per_subtable as u64 * BUCKET_BYTES;
        let base = self.blades[blade_idx].alloc(bytes, 8);
        Rc::new(Subtable {
            blade_idx,
            base,
            local_depth: Cell::new(local_depth),
        })
    }

    /// Operation statistics.
    pub fn stats(&self) -> &RaceStats {
        &self.stats
    }

    /// Current number of subtables.
    pub fn subtable_count(&self) -> usize {
        let dir = self.dir.borrow();
        // Count-only dedup: pointers are never ordered across runs, only
        // counted, so the result is seed-stable. lint:allow(rc-identity)
        let mut seen: Vec<*const Subtable> = dir.iter().map(Rc::as_ptr).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    fn locate(&self, kh: &KeyHash) -> (Rc<Subtable>, usize, usize) {
        let mask = (1u64 << self.global_depth.get()) - 1;
        let st = Rc::clone(&self.dir.borrow()[(kh.h1 & mask) as usize]);
        let buckets = self.cfg.buckets_per_subtable as u64;
        let b1 = ((kh.h1 >> 16) % buckets) as usize;
        let mut b2 = ((kh.h2 >> 16) % buckets) as usize;
        if b2 == b1 {
            b2 = (b2 + 1) % buckets as usize;
        }
        (st, b1, b2)
    }

    fn bucket_addr(&self, st: &Subtable, bucket: usize) -> RemoteAddr {
        RemoteAddr::new(
            self.blades[st.blade_idx].id(),
            st.base + bucket as u64 * BUCKET_BYTES,
        )
    }

    fn slot_addr(&self, st: &Subtable, bucket: usize, slot: usize) -> RemoteAddr {
        self.bucket_addr(st, bucket).offset(slot as u64 * 8)
    }

    fn block_addr(&self, st: &Subtable, slot: Slot) -> RemoteAddr {
        RemoteAddr::new(self.blades[st.blade_idx].id(), slot.offset())
    }

    fn alloc_block(&self, blade_idx: usize, len: u64) -> u64 {
        let mut chunks = self.chunks.borrow_mut();
        let (cur, end) = chunks[blade_idx];
        if cur + len <= end {
            chunks[blade_idx] = (cur + len, end);
            return cur;
        }
        let chunk = self.cfg.kv_chunk_bytes.max(len);
        let base = self.blades[blade_idx].alloc(chunk, 8);
        chunks[blade_idx] = (base + len, base + chunk);
        base
    }

    // --- host-side (load phase / splits) --------------------------------

    /// Inserts during the load phase, bypassing the network (the paper
    /// loads 100 M items before each run; replaying that through the
    /// simulated fabric would add nothing).
    pub fn load(&self, key: &[u8], value: &[u8]) {
        let kh = hash_key(key);
        if !self.try_load(&kh, key, value) {
            self.split(&kh);
            assert!(
                self.try_load(&kh, key, value),
                "insert failed even after split"
            );
        }
    }

    fn try_load(&self, kh: &KeyHash, key: &[u8], value: &[u8]) -> bool {
        let (st, b1, b2) = self.locate(kh);
        let blade = &self.blades[st.blade_idx];
        // Overwrite an existing mapping if present.
        for &b in &[b1, b2] {
            for s in 0..SLOTS_PER_BUCKET {
                let addr = self.slot_addr(&st, b, s);
                let slot = Slot(blade.read_u64(addr.offset_bytes));
                if !slot.is_empty() && slot.fp() == kh.fp {
                    let block = blade.read_bytes(slot.offset(), slot.block_bytes() as u64);
                    if decode_block(&block).is_some_and(|(k, _)| k == key) {
                        let new = self.write_block_direct(st.blade_idx, key, value);
                        blade.write_u64(addr.offset_bytes, new.0);
                        return true;
                    }
                }
            }
        }
        for &b in &[b1, b2] {
            for s in 0..SLOTS_PER_BUCKET {
                let addr = self.slot_addr(&st, b, s);
                if Slot(blade.read_u64(addr.offset_bytes)).is_empty() {
                    let new = self.write_block_direct(st.blade_idx, key, value);
                    blade.write_u64(addr.offset_bytes, new.0);
                    return true;
                }
            }
        }
        false
    }

    /// Host-side lookup against the table's blade memory — used by tests
    /// and by RPC handlers that run *on* the memory blade (the blade CPU
    /// reads its own memory locally).
    pub fn get_direct(&self, key: &[u8]) -> Option<Vec<u8>> {
        let kh = hash_key(key);
        let (st, b1, b2) = self.locate(&kh);
        let blade = &self.blades[st.blade_idx];
        for &b in &[b1, b2] {
            for s in 0..SLOTS_PER_BUCKET {
                let addr = self.slot_addr(&st, b, s);
                let slot = Slot(blade.read_u64(addr.offset_bytes));
                if !slot.is_empty() && slot.fp() == kh.fp {
                    let block = blade.read_bytes(slot.offset(), slot.block_bytes() as u64);
                    if let Some((k, v)) = decode_block(&block) {
                        if k == key {
                            return Some(v.to_vec());
                        }
                    }
                }
            }
        }
        None
    }

    /// Linearizability-lite witness check for `smart-check` schedule
    /// exploration: after a run quiesces, each key's final value must be
    /// one the workload actually wrote for it (its witness candidates).
    /// Returns human-readable violations, empty when the history is
    /// explainable.
    pub fn check_witnesses(&self, witnesses: &[(Vec<u8>, Vec<Vec<u8>>)]) -> Vec<String> {
        let mut violations = Vec::new();
        for (key, candidates) in witnesses {
            match self.get_direct(key) {
                Some(v) if candidates.contains(&v) => {}
                Some(v) => violations.push(format!(
                    "key {:?}: final value {v:?} was never written by any client",
                    String::from_utf8_lossy(key)
                )),
                None => violations.push(format!(
                    "key {:?}: missing after all operations completed",
                    String::from_utf8_lossy(key)
                )),
            }
        }
        violations
    }

    fn write_block_direct(&self, blade_idx: usize, key: &[u8], value: &[u8]) -> Slot {
        let block = encode_block(key, value);
        let off = self.alloc_block(blade_idx, block.len() as u64);
        self.blades[blade_idx].write_bytes(off, &block);
        Slot::encode(hash_key(key).fp, block.len(), off)
    }

    /// Splits the subtable owning `kh`. Runs atomically host-side (no
    /// awaits), so concurrent simulated clients never observe a torn
    /// directory.
    fn split(&self, kh: &KeyHash) {
        let (old, dir_len, old_mask_bit) = {
            let dir = self.dir.borrow();
            let mask = (1u64 << self.global_depth.get()) - 1;
            let st = Rc::clone(&dir[(kh.h1 & mask) as usize]);
            let bit = 1u64 << st.local_depth.get();
            (st, dir.len(), bit)
        };
        if old.local_depth.get() >= 48 {
            panic!("{}", RaceError::Full);
        }
        // Double the directory if the split subtable is at global depth.
        if u64::from(old.local_depth.get()) == u64::from(self.global_depth.get()) {
            let mut dir = self.dir.borrow_mut();
            let snapshot: Vec<Rc<Subtable>> = dir.clone();
            dir.extend(snapshot);
            drop(dir);
            self.global_depth.set(self.global_depth.get() + 1);
        }
        // New sibling on the same blade (keeps block offsets valid).
        let new = self.new_subtable(old.blade_idx, old.local_depth.get() + 1);
        old.local_depth.set(old.local_depth.get() + 1);
        // Repoint directory entries whose split bit is set.
        {
            let mut dir = self.dir.borrow_mut();
            for (i, entry) in dir.iter_mut().enumerate() {
                // Pure equality against one pinned Rc — no ordering or
                // hashing on the address. lint:allow(rc-identity)
                if Rc::ptr_eq(entry, &old) && (i as u64) & old_mask_bit != 0 {
                    *entry = Rc::clone(&new);
                }
            }
            let _ = dir_len;
        }
        // Rehash: move slots whose key now lands in the sibling.
        let blade = &self.blades[old.blade_idx];
        for b in 0..self.cfg.buckets_per_subtable {
            for s in 0..SLOTS_PER_BUCKET {
                let addr = self.slot_addr(&old, b, s);
                let slot = Slot(blade.read_u64(addr.offset_bytes));
                if slot.is_empty() {
                    continue;
                }
                let block = blade.read_bytes(slot.offset(), slot.block_bytes() as u64);
                let Some((k, _)) = decode_block(&block) else {
                    continue;
                };
                let h1 = hash_key(k).h1;
                if h1 & old_mask_bit != 0 {
                    blade.write_u64(addr.offset_bytes, 0);
                    // Same blade, same bucket indices: place into sibling.
                    let placed = self.place_slot(&new, &hash_key(k), slot);
                    assert!(placed, "sibling subtable overflow during split");
                }
            }
        }
    }

    fn place_slot(&self, st: &Subtable, kh: &KeyHash, slot: Slot) -> bool {
        let blade = &self.blades[st.blade_idx];
        let buckets = self.cfg.buckets_per_subtable as u64;
        let b1 = ((kh.h1 >> 16) % buckets) as usize;
        let mut b2 = ((kh.h2 >> 16) % buckets) as usize;
        if b2 == b1 {
            b2 = (b2 + 1) % buckets as usize;
        }
        for &b in &[b1, b2] {
            for s in 0..SLOTS_PER_BUCKET {
                let addr = self.slot_addr(st, b, s);
                if Slot(blade.read_u64(addr.offset_bytes)).is_empty() {
                    blade.write_u64(addr.offset_bytes, slot.0);
                    return true;
                }
            }
        }
        false
    }

    // --- one-sided RDMA operations --------------------------------------

    async fn read_buckets(
        &self,
        coro: &SmartCoro,
        st: &Subtable,
        b1: usize,
        b2: usize,
    ) -> ([Slot; SLOTS_PER_BUCKET], [Slot; SLOTS_PER_BUCKET]) {
        self.try_read_buckets(coro, st, b1, b2)
            .await
            .unwrap_or_else(|e| panic!("{e}"))
    }

    async fn try_read_buckets(
        &self,
        coro: &SmartCoro,
        st: &Subtable,
        b1: usize,
        b2: usize,
    ) -> Result<([Slot; SLOTS_PER_BUCKET], [Slot; SLOTS_PER_BUCKET]), RaceError> {
        let id1 = coro.read(self.bucket_addr(st, b1), BUCKET_BYTES as u32);
        let id2 = coro.read(self.bucket_addr(st, b2), BUCKET_BYTES as u32);
        coro.post_send().await;
        let cqes = coro
            .try_sync()
            .await
            .map_err(|e| RaceError::Fault(e.error))?;
        let mut s1 = [Slot::EMPTY; SLOTS_PER_BUCKET];
        let mut s2 = [Slot::EMPTY; SLOTS_PER_BUCKET];
        for cqe in cqes {
            if cqe.wr_id == id1 {
                s1 = decode_bucket(cqe.read_data());
            } else if cqe.wr_id == id2 {
                s2 = decode_bucket(cqe.read_data());
            }
        }
        Ok((s1, s2))
    }

    /// Finds `key`'s slot among the candidate buckets, verifying the key
    /// by reading the block (extra READs only on fingerprint hits).
    async fn find_slot(
        &self,
        coro: &SmartCoro,
        st: &Subtable,
        kh: &KeyHash,
        key: &[u8],
        b1: usize,
        b2: usize,
    ) -> Option<(usize, usize, Slot, Vec<u8>)> {
        self.try_find_slot(coro, st, kh, key, b1, b2)
            .await
            .unwrap_or_else(|e| panic!("{e}"))
    }

    async fn try_find_slot(
        &self,
        coro: &SmartCoro,
        st: &Subtable,
        kh: &KeyHash,
        key: &[u8],
        b1: usize,
        b2: usize,
    ) -> Result<Option<(usize, usize, Slot, Vec<u8>)>, RaceError> {
        let (s1, s2) = self.try_read_buckets(coro, st, b1, b2).await?;
        for (b, slots) in [(b1, s1), (b2, s2)] {
            for (i, slot) in slots.iter().enumerate() {
                if !slot.is_empty() && slot.fp() == kh.fp {
                    let data = coro
                        .try_read_sync(self.block_addr(st, *slot), slot.block_bytes() as u32)
                        .await
                        .map_err(|e| RaceError::Fault(e.error))?;
                    if let Some((k, v)) = decode_block(&data) {
                        if k == key {
                            // The caller will CAS against this observed
                            // slot value: record the read that opens the
                            // read-modify-write for `smart-check`.
                            coro.probe_cell(self.slot_addr(st, b, i), "race_slot", SyncOp::Read);
                            return Ok(Some((b, i, *slot, v.to_vec())));
                        }
                    }
                }
            }
        }
        Ok(None)
    }

    /// Looks up `key` (the paper's three-READ path).
    ///
    /// ```rust
    /// # use std::rc::Rc;
    /// # use smart::{SmartConfig, SmartContext};
    /// # use smart_race::{RaceConfig, RaceHashTable};
    /// # use smart_rnic::{Cluster, ClusterConfig};
    /// # use smart_rt::Simulation;
    /// let mut sim = Simulation::new(1);
    /// let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    /// let table = RaceHashTable::create(cluster.blades(), RaceConfig::default());
    /// table.load(b"k", b"v");
    /// let ctx = SmartContext::new(cluster.compute(0), cluster.blades(),
    ///                             SmartConfig::smart_full(1));
    /// let coro = ctx.create_thread().coroutine();
    /// let got = sim.block_on(async move { table.get(&coro, b"k").await });
    /// assert_eq!(got.as_deref(), Some(b"v".as_slice()));
    /// ```
    pub async fn get(&self, coro: &SmartCoro, key: &[u8]) -> Option<Vec<u8>> {
        self.try_get(coro, key)
            .await
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible lookup: like [`get`](Self::get), but surfaces an
    /// unrecoverable RDMA fault as [`RaceError::Fault`] instead of
    /// panicking. Transient faults are retried transparently by the
    /// coroutine's [`RetryPolicy`](smart::RetryPolicy).
    pub async fn try_get(
        &self,
        coro: &SmartCoro,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>, RaceError> {
        let _op = coro.op_scope_named("ht_get").await;
        let kh = hash_key(key);
        let (st, b1, b2) = self.locate(&kh);
        let found = self.try_find_slot(coro, &st, &kh, key, b1, b2).await?;
        self.stats.lookups.incr();
        Ok(found.map(|(_, _, _, v)| v))
    }

    /// Writes a fresh block for (`key`, `value`) over RDMA and returns
    /// its slot encoding.
    async fn publish_block(
        &self,
        coro: &SmartCoro,
        st: &Subtable,
        key: &[u8],
        value: &[u8],
    ) -> Slot {
        let block = encode_block(key, value);
        let off = self.alloc_block(st.blade_idx, block.len() as u64);
        let len = block.len();
        coro.write_sync(RemoteAddr::new(self.blades[st.blade_idx].id(), off), block)
            .await;
        Slot::encode(hash_key(key).fp, len, off)
    }

    /// Inserts or overwrites `key` via one-sided verbs. Returns the
    /// number of unsuccessful CAS retries.
    pub async fn insert(
        &self,
        coro: &SmartCoro,
        key: &[u8],
        value: &[u8],
    ) -> Result<u32, RaceError> {
        let _op = coro.op_scope_named("ht_insert").await;
        let kh = hash_key(key);
        let mut retries = 0u32;
        'restart: loop {
            let (st, b1, b2) = self.locate(&kh);
            // Existing key: switch to the update path.
            if let Some((b, i, old, _)) = self.find_slot(coro, &st, &kh, key, b1, b2).await {
                return self
                    .cas_update_loop(coro, &st, b, i, old, key, value, retries)
                    .await;
            }
            // Fresh key: claim an empty slot.
            loop {
                if retries > self.cfg.max_retries {
                    self.stats.record_update_retries(retries);
                    return Err(RaceError::Contention);
                }
                let (s1, s2) = self.read_buckets(coro, &st, b1, b2).await;
                let mut target = None;
                for (b, slots) in [(b1, &s1), (b2, &s2)] {
                    for (i, slot) in slots.iter().enumerate() {
                        if slot.is_empty() {
                            target = Some((b, i));
                            break;
                        }
                    }
                    if target.is_some() {
                        break;
                    }
                }
                let Some((b, i)) = target else {
                    // Both buckets full: grow the table and restart.
                    self.split(&kh);
                    continue 'restart;
                };
                // The empty-slot observation opens the claim RMW that the
                // CAS below closes.
                coro.probe_cell(self.slot_addr(&st, b, i), "race_slot", SyncOp::Read);
                let new = self.publish_block(coro, &st, key, value).await;
                let addr = self.slot_addr(&st, b, i);
                let old = coro.backoff_cas_sync(addr, 0, new.0).await;
                if old == 0 {
                    self.stats.inserts.incr();
                    self.stats.record_update_retries(retries);
                    return Ok(retries);
                }
                retries += 1;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    async fn cas_update_loop(
        &self,
        coro: &SmartCoro,
        st: &Subtable,
        bucket: usize,
        slot_idx: usize,
        mut old: Slot,
        key: &[u8],
        value: &[u8],
        mut retries: u32,
    ) -> Result<u32, RaceError> {
        loop {
            if retries > self.cfg.max_retries {
                self.stats.record_update_retries(retries);
                return Err(RaceError::Contention);
            }
            // The paper's 3-op retry: (re)write the block, CAS, and on
            // failure re-read the bucket to learn the new slot value.
            let new = self.publish_block(coro, st, key, value).await;
            let addr = self.slot_addr(st, bucket, slot_idx);
            let seen = coro.backoff_cas_sync(addr, old.0, new.0).await;
            if seen == old.0 {
                self.stats.updates.incr();
                self.stats.record_update_retries(retries);
                return Ok(retries);
            }
            retries += 1;
            // The paper's retry re-reads the bucket *after* the backoff
            // (backoff_cas_sync sleeps before returning on failure).
            // Reusing the CAS-returned value instead would leave `expect`
            // stale by the whole backoff duration — under contention the
            // slot has certainly moved on by then, guaranteeing another
            // failure and starving backed-off operations.
            let data = coro
                .read_sync(self.bucket_addr(st, bucket), BUCKET_BYTES as u32)
                .await;
            let current = decode_bucket(&data)[slot_idx];
            if current.is_empty() || current.fp() != hash_key(key).fp {
                // The slot changed identity (concurrent remove/steal):
                // the caller must re-locate the key from scratch.
                return Err(RaceError::NotFound);
            }
            old = current;
        }
    }

    /// Updates an existing key. Returns the number of unsuccessful CAS
    /// retries.
    ///
    /// # Errors
    ///
    /// [`RaceError::NotFound`] if the key is absent;
    /// [`RaceError::Contention`] past the retry cap.
    pub async fn update(
        &self,
        coro: &SmartCoro,
        key: &[u8],
        value: &[u8],
    ) -> Result<u32, RaceError> {
        let _op = coro.op_scope_named("ht_update").await;
        let kh = hash_key(key);
        let (st, b1, b2) = self.locate(&kh);
        let Some((b, i, old, _)) = self.find_slot(coro, &st, &kh, key, b1, b2).await else {
            return Err(RaceError::NotFound);
        };
        self.cas_update_loop(coro, &st, b, i, old, key, value, 0)
            .await
    }

    /// Removes `key`. Returns whether it was present.
    pub async fn remove(&self, coro: &SmartCoro, key: &[u8]) -> Result<bool, RaceError> {
        let _op = coro.op_scope_named("ht_remove").await;
        let kh = hash_key(key);
        let mut retries = 0u32;
        loop {
            if retries > self.cfg.max_retries {
                return Err(RaceError::Contention);
            }
            let (st, b1, b2) = self.locate(&kh);
            let Some((b, i, old, _)) = self.find_slot(coro, &st, &kh, key, b1, b2).await else {
                self.stats.removes.incr();
                return Ok(false);
            };
            let addr = self.slot_addr(&st, b, i);
            let seen = coro.backoff_cas_sync(addr, old.0, 0).await;
            if seen == old.0 {
                self.stats.removes.incr();
                return Ok(true);
            }
            retries += 1;
        }
    }
}
