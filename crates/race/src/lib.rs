#![warn(missing_docs)]

//! # smart-race — a RACE-style lock-free disaggregated hash table
//!
//! From-scratch implementation of the extendible hash table of RACE (Zuo
//! et al., USENIX ATC '21 / TOS '22), the system the SMART paper uses as
//! its hash-table case study (the RACE code is not public; the SMART
//! authors also reimplemented it, §5.2).
//!
//! All client operations go through one-sided verbs on
//! [`smart::SmartCoro`]; switching the framework configuration between
//! [`smart::SmartConfig::baseline`] and [`smart::SmartConfig::smart_full`]
//! is the reproduction of the paper's RACE → SMART-HT refactor.
//!
//! ```rust
//! use std::rc::Rc;
//! use smart::{SmartConfig, SmartContext};
//! use smart_race::{RaceConfig, RaceHashTable};
//! use smart_rnic::{Cluster, ClusterConfig};
//! use smart_rt::Simulation;
//!
//! let mut sim = Simulation::new(3);
//! let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
//! let table = RaceHashTable::create(cluster.blades(), RaceConfig::default());
//! table.load(b"hello", b"world");
//!
//! let ctx = SmartContext::new(cluster.compute(0), cluster.blades(), SmartConfig::smart_full(1));
//! let coro = ctx.create_thread().coroutine();
//! let t = Rc::clone(&table);
//! let got = sim.block_on(async move { t.get(&coro, b"hello").await });
//! assert_eq!(got.as_deref(), Some(b"world".as_slice()));
//! ```

pub mod layout;
pub mod stats;
pub mod table;

pub use stats::{RaceStats, RETRY_HIST_BUCKETS};
pub use table::{RaceConfig, RaceError, RaceHashTable};
