//! Operation statistics for the hash table (Figure 14's metrics).

use std::cell::RefCell;

use smart_rt::metrics::Counter;

/// Longest retry count tracked individually; longer runs land in the last
/// histogram bucket.
pub const RETRY_HIST_BUCKETS: usize = 32;

/// Counters for hash-table operations.
#[derive(Debug, Default)]
pub struct RaceStats {
    /// Completed lookups.
    pub lookups: Counter,
    /// Completed inserts.
    pub inserts: Counter,
    /// Completed updates.
    pub updates: Counter,
    /// Completed removes.
    pub removes: Counter,
    /// Total unsuccessful CAS retries across all operations.
    pub cas_retries: Counter,
    retry_hist: RefCell<[u64; RETRY_HIST_BUCKETS]>,
}

impl RaceStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that one update finished after `retries` unsuccessful
    /// retries.
    pub fn record_update_retries(&self, retries: u32) {
        self.cas_retries.add(retries as u64);
        let idx = (retries as usize).min(RETRY_HIST_BUCKETS - 1);
        self.retry_hist.borrow_mut()[idx] += 1;
    }

    /// The retry-count distribution (index = retries per operation,
    /// Figure 14c).
    pub fn retry_histogram(&self) -> [u64; RETRY_HIST_BUCKETS] {
        *self.retry_hist.borrow()
    }

    /// Average retries per recorded operation (Figure 14b).
    pub fn avg_retries(&self) -> f64 {
        let hist = self.retry_hist.borrow();
        let ops: u64 = hist.iter().sum();
        if ops == 0 {
            0.0
        } else {
            self.cas_retries.get() as f64 / ops as f64
        }
    }

    /// Fraction of recorded operations that needed no retry.
    pub fn zero_retry_fraction(&self) -> f64 {
        let hist = self.retry_hist.borrow();
        let ops: u64 = hist.iter().sum();
        if ops == 0 {
            1.0
        } else {
            hist[0] as f64 / ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_and_average() {
        let s = RaceStats::new();
        s.record_update_retries(0);
        s.record_update_retries(0);
        s.record_update_retries(4);
        assert_eq!(s.retry_histogram()[0], 2);
        assert_eq!(s.retry_histogram()[4], 1);
        assert!((s.avg_retries() - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.zero_retry_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn long_runs_saturate_last_bucket() {
        let s = RaceStats::new();
        s.record_update_retries(1000);
        assert_eq!(s.retry_histogram()[RETRY_HIST_BUCKETS - 1], 1);
        assert_eq!(s.cas_retries.get(), 1000);
    }

    #[test]
    fn empty_stats_defaults() {
        let s = RaceStats::new();
        assert_eq!(s.avg_retries(), 0.0);
        assert_eq!(s.zero_retry_fraction(), 1.0);
    }
}
