//! The `FaultPlan` DSL: a declarative, deterministic chaos schedule.
//!
//! A plan combines **scheduled events** at absolute virtual times (QP
//! error transitions, blade crash/restart windows) with **per-work-request
//! probabilities** (packet loss, RNR rejections, latency spikes, permanent
//! access errors). Probabilities are drawn from the simulation's seeded
//! PRNG, so a plan replayed against the same seed injects the exact same
//! faults — chaos runs are as reproducible as healthy ones.

use std::time::Duration;

use smart_rnic::{BladeId, NodeId};
use smart_rt::pdes::DomainId;
use smart_rt::rng::SimRng;

/// A scheduled fault at an absolute virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time (since simulation start) at which the fault fires.
    pub at: Duration,
    /// What happens.
    pub kind: FaultEventKind,
}

/// The kinds of scheduled faults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEventKind {
    /// Transition QPs of compute node `node` to the error state: their
    /// outstanding work requests flush as error completions and new posts
    /// flush until the recovery layer re-establishes them. `qp` selects
    /// the n-th QP created on that node, `None` selects all of them.
    QpError {
        /// Compute-node index.
        node: u32,
        /// Index into the node's QPs in creation order; `None` = all.
        qp: Option<u32>,
    },
    /// Crash memory blade `blade` for `down_for`: operations targeting it
    /// surface as timeout completions, and after restart each QP sees one
    /// stale-MR completion before its re-registered handle works again.
    BladeCrash {
        /// Blade index.
        blade: u32,
        /// Length of the outage window.
        down_for: Duration,
    },
}

/// A deterministic chaos schedule. Build with the `with_*`/`*_at`
/// methods, then hand to
/// [`FaultInjector::install`](crate::FaultInjector::install).
///
/// ```rust
/// use smart_fault::FaultPlan;
/// use std::time::Duration;
///
/// let plan = FaultPlan::new()
///     .with_packet_loss(0.01)
///     .qp_error_at(Duration::from_micros(50), 0, None)
///     .blade_crash_at(Duration::from_millis(1), 0, Duration::from_micros(200));
/// assert_eq!(plan.events().len(), 2);
/// assert!(!plan.is_passive());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    loss_rate: f64,
    rnr_rate: f64,
    spike_rate: f64,
    spike_extra: Duration,
    access_error_rate: f64,
}

impl FaultPlan {
    /// An empty plan: no faults at all.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a QP error transition (see [`FaultEventKind::QpError`]).
    #[must_use]
    pub fn qp_error_at(mut self, at: Duration, node: u32, qp: Option<u32>) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultEventKind::QpError { node, qp },
        });
        self
    }

    /// Schedules a blade crash/restart window (see
    /// [`FaultEventKind::BladeCrash`]).
    #[must_use]
    pub fn blade_crash_at(mut self, at: Duration, blade: u32, down_for: Duration) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultEventKind::BladeCrash { blade, down_for },
        });
        self
    }

    /// Each work request is independently lost on the fabric with
    /// probability `rate`, surfacing as a retriable timeout completion.
    #[must_use]
    pub fn with_packet_loss(mut self, rate: f64) -> Self {
        self.loss_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Each work request is independently rejected RNR-NAK-style with
    /// probability `rate` (retriable).
    #[must_use]
    pub fn with_rnr(mut self, rate: f64) -> Self {
        self.rnr_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Each work request independently suffers an `extra` latency spike
    /// with probability `rate` (no error; it just arrives late).
    #[must_use]
    pub fn with_latency_spikes(mut self, rate: f64, extra: Duration) -> Self {
        self.spike_rate = rate.clamp(0.0, 1.0);
        self.spike_extra = extra;
        self
    }

    /// Each work request independently fails with a **permanent** remote
    /// access error with probability `rate`. Permanent errors are not
    /// retried: they propagate to the application as a typed error.
    #[must_use]
    pub fn with_access_errors(mut self, rate: f64) -> Self {
        self.access_error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Folds another plan into this one: scheduled events concatenate
    /// (the injector orders them by time anyway), and each per-WR
    /// probability knob takes `other`'s value when set there, keeping
    /// `self`'s otherwise.
    ///
    /// This lets a scripted timeline (say, a membership driver's blade
    /// leave/join windows) compose with an orthogonal background-noise
    /// plan without either side knowing about the other. When both plans
    /// set the *same* probability knob, `other` wins — callers layering
    /// two noise plans should pick one owner per knob.
    #[must_use]
    pub fn merge(mut self, other: &FaultPlan) -> Self {
        self.events.extend(other.events.iter().cloned());
        if other.loss_rate > 0.0 {
            self.loss_rate = other.loss_rate;
        }
        if other.rnr_rate > 0.0 {
            self.rnr_rate = other.rnr_rate;
        }
        if other.spike_rate > 0.0 {
            self.spike_rate = other.spike_rate;
            self.spike_extra = other.spike_extra;
        }
        if other.access_error_rate > 0.0 {
            self.access_error_rate = other.access_error_rate;
        }
        self
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Packet-loss probability per work request.
    pub fn loss_rate(&self) -> f64 {
        self.loss_rate
    }

    /// RNR-rejection probability per work request.
    pub fn rnr_rate(&self) -> f64 {
        self.rnr_rate
    }

    /// Latency-spike probability and magnitude.
    pub fn spikes(&self) -> (f64, Duration) {
        (self.spike_rate, self.spike_extra)
    }

    /// Permanent access-error probability per work request.
    pub fn access_error_rate(&self) -> f64 {
        self.access_error_rate
    }

    /// Whether the plan injects nothing at all. A passive plan's injector
    /// never draws from the PRNG and never perturbs timing, so a run with
    /// it installed is bit-identical to a run without any injector.
    pub fn is_passive(&self) -> bool {
        self.events.is_empty()
            && self.loss_rate == 0.0
            && self.rnr_rate == 0.0
            && self.spike_rate == 0.0
            && self.access_error_rate == 0.0
    }

    /// Whether every injected fault is transient — i.e. a run under this
    /// plan eventually heals, so a recovery layer with an unlimited retry
    /// budget must converge.
    pub fn eventually_heals(&self) -> bool {
        self.access_error_rate == 0.0
    }

    /// Generates a random *healing* plan from `seed`, scaled to a run of
    /// roughly `horizon` virtual time over `nodes` compute nodes and
    /// `blades` memory blades: low-rate packet loss / RNR / spikes plus up
    /// to two QP error transitions and at most one short blade outage.
    /// Never generates permanent errors, so recovery must converge.
    pub fn random(seed: u64, horizon: Duration, nodes: u32, blades: u32) -> Self {
        let mut rng = SimRng::new(seed);
        let h = horizon.as_nanos() as u64;
        let mut plan = FaultPlan::new()
            .with_packet_loss(rng.next_f64() * 0.02)
            .with_rnr(rng.next_f64() * 0.01);
        if rng.gen_bool(0.5) {
            plan = plan.with_latency_spikes(
                rng.next_f64() * 0.02,
                Duration::from_nanos(rng.gen_range(1_000, 20_000)),
            );
        }
        let qp_errors = rng.next_u64_below(3);
        for _ in 0..qp_errors {
            let at = Duration::from_nanos(rng.gen_range(h / 10, h));
            let node = rng.next_u64_below(nodes.max(1) as u64) as u32;
            plan = plan.qp_error_at(at, node, None);
        }
        if rng.gen_bool(0.5) {
            let at = Duration::from_nanos(rng.gen_range(h / 10, h * 7 / 10));
            let down = Duration::from_nanos(rng.gen_range(h / 50, h / 10));
            let blade = rng.next_u64_below(blades.max(1) as u64) as u32;
            plan = plan.blade_crash_at(at, blade, down);
        }
        plan
    }

    /// Lowers the plan onto a scheduling-domain partition: scheduled
    /// events land on the domain owning their target (QP errors with the
    /// node, blade crashes with the blade), while per-work-request
    /// probability knobs replicate into every domain — they are drawn at
    /// the posting site, which always lives with the node.
    ///
    /// Returns one `(domain, plan)` entry per domain of the partition, in
    /// domain order, so a PDES coordinator can install each sub-plan when
    /// it builds that domain. The concatenation of all sub-plans' events
    /// preserves the original insertion order within each domain.
    pub fn lower_onto(&self, plan: &smart_rnic::DomainPlan) -> Vec<(DomainId, FaultPlan)> {
        let mut out: Vec<(DomainId, FaultPlan)> = (0..plan.domains())
            .map(|d| {
                let mut sub = self.clone();
                sub.events.clear();
                (DomainId(d), sub)
            })
            .collect();
        for ev in &self.events {
            let owner = match ev.kind {
                FaultEventKind::QpError { node, .. } => plan.node_domain(NodeId(node)),
                FaultEventKind::BladeCrash { blade, .. } => plan.blade_domain(BladeId(blade)),
            };
            out[owner.index()].1.events.push(ev.clone());
        }
        out
    }

    /// One-line human-readable summary (for findings reports).
    pub fn describe(&self) -> String {
        format!(
            "loss={:.4} rnr={:.4} spikes={:.4}/{:?} access={:.4} events={}",
            self.loss_rate,
            self.rnr_rate,
            self.spike_rate,
            self.spike_extra,
            self.access_error_rate,
            self.events.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let p = FaultPlan::new()
            .with_packet_loss(0.01)
            .with_rnr(0.002)
            .with_latency_spikes(0.05, Duration::from_micros(10))
            .qp_error_at(Duration::from_micros(5), 1, Some(0))
            .blade_crash_at(Duration::from_micros(9), 0, Duration::from_micros(3));
        assert_eq!(p.loss_rate(), 0.01);
        assert_eq!(p.rnr_rate(), 0.002);
        assert_eq!(p.spikes(), (0.05, Duration::from_micros(10)));
        assert_eq!(p.events().len(), 2);
        assert!(!p.is_passive());
        assert!(p.eventually_heals());
    }

    #[test]
    fn empty_plan_is_passive() {
        assert!(FaultPlan::new().is_passive());
        assert!(!FaultPlan::new().with_access_errors(0.5).eventually_heals());
    }

    #[test]
    fn rates_are_clamped() {
        let p = FaultPlan::new().with_packet_loss(7.0).with_rnr(-1.0);
        assert_eq!(p.loss_rate(), 1.0);
        assert_eq!(p.rnr_rate(), 0.0);
    }

    #[test]
    fn random_plans_are_deterministic_and_healing() {
        let h = Duration::from_millis(2);
        for seed in 0..64 {
            let a = FaultPlan::random(seed, h, 2, 2);
            let b = FaultPlan::random(seed, h, 2, 2);
            assert_eq!(a, b, "seed {seed} not reproducible");
            assert!(
                a.eventually_heals(),
                "seed {seed} generated permanent faults"
            );
            for ev in a.events() {
                assert!(ev.at <= h, "seed {seed} scheduled past horizon");
            }
        }
    }

    #[test]
    fn merge_concatenates_events_and_overlays_rates() {
        let timeline = FaultPlan::new()
            .blade_crash_at(Duration::from_micros(10), 1, Duration::from_micros(5))
            .with_packet_loss(0.25);
        let noise = FaultPlan::new()
            .qp_error_at(Duration::from_micros(3), 0, None)
            .with_rnr(0.5);
        let merged = timeline.clone().merge(&noise);
        assert_eq!(merged.events().len(), 2);
        assert_eq!(merged.events()[0], timeline.events()[0]);
        assert_eq!(merged.events()[1], noise.events()[0]);
        assert_eq!(merged.loss_rate(), 0.25, "unset knob keeps self's value");
        assert_eq!(merged.rnr_rate(), 0.5, "other's set knob wins");
        assert!(!merged.is_passive());
        // Merging an empty plan changes nothing.
        assert_eq!(timeline.clone().merge(&FaultPlan::new()), timeline);
    }

    #[test]
    fn lower_onto_routes_events_to_owning_domains() {
        let plan = FaultPlan::new()
            .with_packet_loss(0.1)
            .qp_error_at(Duration::from_micros(3), 0, None)
            .blade_crash_at(Duration::from_micros(10), 1, Duration::from_micros(5))
            .blade_crash_at(Duration::from_micros(20), 0, Duration::from_micros(5));
        let part = smart_rnic::DomainPlan::per_blade(1, 2);
        let lowered = plan.lower_onto(&part);
        assert_eq!(lowered.len(), 3);
        // QP error stays with node 0's domain (0); blade crashes follow
        // their blades (blade 0 → domain 1, blade 1 → domain 2).
        assert_eq!(lowered[0].1.events().len(), 1);
        assert_eq!(lowered[1].1.events().len(), 1);
        assert_eq!(lowered[2].1.events().len(), 1);
        assert!(matches!(
            lowered[2].1.events()[0].kind,
            FaultEventKind::BladeCrash { blade: 1, .. }
        ));
        // Probability knobs replicate everywhere.
        for (_, sub) in &lowered {
            assert_eq!(sub.loss_rate(), 0.1);
        }
        // The single-domain lowering is the plan itself.
        let single = plan.lower_onto(&smart_rnic::DomainPlan::single(1, 2));
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].1, plan);
    }

    #[test]
    fn random_plans_vary_across_seeds() {
        let h = Duration::from_millis(2);
        let distinct: std::collections::BTreeSet<String> = (0..32)
            .map(|s| format!("{:?}", FaultPlan::random(s, h, 2, 2)))
            .collect();
        assert!(
            distinct.len() > 16,
            "only {} distinct plans",
            distinct.len()
        );
    }
}
