//! The `FaultInjector`: executes a [`FaultPlan`] against a live cluster.
//!
//! The injector implements [`smart_rnic::FaultHook`], so the RNIC model
//! consults it once per work request at the pre-execution checkpoint, and
//! it drives scheduled events (QP errors, blade crash/restart windows)
//! from a spawned timeline task. It holds only [`Weak`] references to QPs
//! — the hook is owned by each compute node, and a strong reference would
//! close an `Rc` cycle (node → hook → qp → ctx → node) that leaks whole
//! clusters across sweep runs.

use std::cell::{Cell, RefCell};
use std::rc::{Rc, Weak};

use smart_rnic::{Cluster, CqeError, FaultHook, InjectDecision, MemoryBlade, Qp, WorkRequest};
use smart_rt::metrics::Counter;
use smart_rt::{SimHandle, SimTime};
use smart_trace::{Actor, Args, Category};

use crate::plan::{FaultEventKind, FaultPlan};

/// One registered QP: which compute node created it, a weak handle, and
/// the last blade-restart epoch this QP's memory registration has caught
/// up with (stale registrations fail once with `MrRevoked`).
struct QpReg {
    node: u32,
    qp: Weak<Qp>,
    seen_epoch: Cell<u64>,
}

/// Counts of injected faults, by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Work requests dropped on the fabric (timeout completions).
    pub lost: u64,
    /// Work requests rejected RNR-NAK-style.
    pub rnr: u64,
    /// Work requests delayed by a latency spike.
    pub spikes: u64,
    /// Work requests failed with a permanent remote-access error.
    pub access_errors: u64,
    /// Work requests failed against a stale (post-restart) registration.
    pub mr_revoked: u64,
    /// QP error transitions applied.
    pub qp_errors: u64,
    /// Blade crashes applied.
    pub blade_crashes: u64,
}

impl FaultStats {
    /// Total error completions this injector caused directly (excludes
    /// flushes the RNIC generates while a QP sits in the error state).
    pub fn total_injected(&self) -> u64 {
        self.lost + self.rnr + self.access_errors + self.mr_revoked
    }
}

/// Executes a [`FaultPlan`] against a cluster. Install with
/// [`FaultInjector::install`]; inspect what actually fired with
/// [`FaultInjector::stats`].
pub struct FaultInjector {
    handle: SimHandle,
    plan: FaultPlan,
    qps: RefCell<Vec<QpReg>>,
    lost: Counter,
    rnr: Counter,
    spikes: Counter,
    access_errors: Counter,
    mr_revoked: Counter,
    qp_errors: Counter,
    blade_crashes: Counter,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("qps", &self.qps.borrow().len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl FaultInjector {
    /// Installs `plan` on every compute node of `cluster` and spawns the
    /// timeline task that applies its scheduled events. Call before
    /// creating QPs so the injector can track them from birth.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no compute nodes, or if an event names a
    /// node or blade the cluster doesn't have.
    pub fn install(cluster: &Cluster, plan: FaultPlan) -> Rc<Self> {
        assert!(
            !cluster.compute_nodes().is_empty(),
            "fault injection needs at least one compute node"
        );
        let handle = cluster.compute(0).handle().clone();
        for ev in plan.events() {
            match ev.kind {
                FaultEventKind::QpError { node, .. } => assert!(
                    (node as usize) < cluster.compute_nodes().len(),
                    "plan names compute node {node}, cluster has {}",
                    cluster.compute_nodes().len()
                ),
                FaultEventKind::BladeCrash { blade, .. } => assert!(
                    (blade as usize) < cluster.blades().len(),
                    "plan names blade {blade}, cluster has {}",
                    cluster.blades().len()
                ),
            }
        }
        let injector = Rc::new(FaultInjector {
            handle: handle.clone(),
            plan,
            qps: RefCell::new(Vec::new()),
            lost: Counter::new(),
            rnr: Counter::new(),
            spikes: Counter::new(),
            access_errors: Counter::new(),
            mr_revoked: Counter::new(),
            qp_errors: Counter::new(),
            blade_crashes: Counter::new(),
        });
        for node in cluster.compute_nodes() {
            node.install_fault_hook(Rc::clone(&injector) as Rc<dyn FaultHook>);
        }
        // Expand crash events into crash + restart entries and replay them
        // in time order from one driver task.
        let mut timeline: Vec<(SimTime, TimelineAction)> = Vec::new();
        for ev in injector.plan.events() {
            let at = SimTime::ZERO + ev.at;
            match ev.kind {
                FaultEventKind::QpError { node, qp } => {
                    timeline.push((at, TimelineAction::QpError { node, qp }));
                }
                FaultEventKind::BladeCrash { blade, down_for } => {
                    timeline.push((at, TimelineAction::Crash { blade }));
                    timeline.push((at + down_for, TimelineAction::Restart { blade }));
                }
            }
        }
        timeline.sort_by_key(|(t, _)| *t);
        if !timeline.is_empty() {
            let driver = Rc::clone(&injector);
            let blades: Vec<Rc<MemoryBlade>> = cluster.blades().iter().map(Rc::clone).collect();
            handle.clone().spawn(async move {
                for (at, action) in timeline {
                    driver.handle.sleep_until(at).await;
                    driver.apply(&blades, action);
                }
            });
        }
        injector
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of what has fired so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            lost: self.lost.get(),
            rnr: self.rnr.get(),
            spikes: self.spikes.get(),
            access_errors: self.access_errors.get(),
            mr_revoked: self.mr_revoked.get(),
            qp_errors: self.qp_errors.get(),
            blade_crashes: self.blade_crashes.get(),
        }
    }

    fn trace_event(&self, name: &'static str, args: Args) {
        let handle = &self.handle;
        handle.with_tracer(|t| {
            t.instant(
                handle.now().as_nanos(),
                Actor::SYSTEM,
                Category::Fault,
                name,
                args,
            );
        });
    }

    fn apply(&self, blades: &[Rc<MemoryBlade>], action: TimelineAction) {
        match action {
            TimelineAction::QpError { node, qp } => {
                let regs = self.qps.borrow();
                for (nth, reg) in regs.iter().filter(|r| r.node == node).enumerate() {
                    if !(qp.is_none() || qp == Some(nth as u32)) {
                        continue;
                    }
                    if let Some(qp) = reg.qp.upgrade() {
                        if !qp.is_errored() {
                            qp.force_error();
                            self.qp_errors.incr();
                            self.trace_event(
                                "qp_error",
                                Args::two("node", node as u64, "qp", qp.index() as u64),
                            );
                        }
                    }
                }
            }
            TimelineAction::Crash { blade } => {
                let b = &blades[blade as usize];
                if !b.is_crashed() {
                    b.crash();
                    self.blade_crashes.incr();
                    self.trace_event("blade_crash", Args::one("blade", blade as u64));
                }
            }
            TimelineAction::Restart { blade } => {
                let b = &blades[blade as usize];
                if b.is_crashed() {
                    b.restart();
                    self.trace_event("blade_restart", Args::one("blade", blade as u64));
                }
            }
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum TimelineAction {
    QpError { node: u32, qp: Option<u32> },
    Crash { blade: u32 },
    Restart { blade: u32 },
}

impl FaultHook for FaultInjector {
    fn on_wr(&self, qp: &Qp, _wr: &WorkRequest) -> InjectDecision {
        // Stale memory registration after a blade restart: the first work
        // request per QP fails with MrRevoked, then the (re-registered)
        // handle works again. Gated on epoch > 0 so the scan never runs in
        // crash-free plans.
        let blade = qp.target();
        if blade.epoch() > 0 && !blade.is_crashed() {
            let regs = self.qps.borrow();
            if let Some(reg) = regs
                .iter()
                .find(|r| r.qp.upgrade().is_some_and(|rc| std::ptr::eq(&*rc, qp)))
            {
                if reg.seen_epoch.get() < blade.epoch() {
                    reg.seen_epoch.set(blade.epoch());
                    self.mr_revoked.incr();
                    return InjectDecision::Fail(CqeError::MrRevoked);
                }
            }
        }
        // Probabilistic faults. Every draw is gated on its rate so a
        // passive plan consumes nothing from the simulation's PRNG stream
        // and a chaos run at rate 0 is bit-identical to a fault-free run.
        let p = &self.plan;
        if p.access_error_rate() > 0.0
            && self.handle.with_rng(|r| r.gen_bool(p.access_error_rate()))
        {
            self.access_errors.incr();
            return InjectDecision::Fail(CqeError::RemoteAccess);
        }
        if p.loss_rate() > 0.0 && self.handle.with_rng(|r| r.gen_bool(p.loss_rate())) {
            self.lost.incr();
            return InjectDecision::Fail(CqeError::Timeout);
        }
        if p.rnr_rate() > 0.0 && self.handle.with_rng(|r| r.gen_bool(p.rnr_rate())) {
            self.rnr.incr();
            return InjectDecision::Fail(CqeError::RnrNak);
        }
        let (spike_rate, spike_extra) = p.spikes();
        if spike_rate > 0.0 && self.handle.with_rng(|r| r.gen_bool(spike_rate)) {
            self.spikes.incr();
            return InjectDecision::Delay(spike_extra);
        }
        InjectDecision::Deliver
    }

    fn on_qp_created(&self, qp: &Rc<Qp>) {
        self.qps.borrow_mut().push(QpReg {
            node: qp.context().node().id().0,
            qp: Rc::downgrade(qp),
            seen_epoch: Cell::new(qp.target().epoch()),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_rnic::{ClusterConfig, Cq, DoorbellBinding, OneSidedOp, OpResult, RemoteAddr};
    use smart_rt::{Duration, Simulation};

    fn cluster(sim: &Simulation) -> Cluster {
        Cluster::new(sim.handle(), ClusterConfig::new(1, 1))
    }

    #[test]
    fn passive_plan_delivers_everything() {
        let sim = Simulation::new(1);
        let c = cluster(&sim);
        let inj = FaultInjector::install(&c, FaultPlan::new());
        let ctx = c.compute(0).open_context(None);
        ctx.register_memory(1 << 20);
        let cq = Cq::new();
        let qp = ctx.create_qp(c.blade(0), &cq, DoorbellBinding::DriverDefault, false);
        let wr = WorkRequest {
            wr_id: 7,
            op: OneSidedOp::Read {
                addr: RemoteAddr::new(c.blade(0).id(), c.blade(0).alloc(64, 8)),
                len: 64,
            },
        };
        assert_eq!(inj.on_wr(&qp, &wr), InjectDecision::Deliver);
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn full_loss_fails_every_wr_as_timeout() {
        let mut sim = Simulation::new(1);
        let c = cluster(&sim);
        let inj = FaultInjector::install(&c, FaultPlan::new().with_packet_loss(1.0));
        let ctx = c.compute(0).open_context(None);
        ctx.register_memory(1 << 20);
        let cq = Cq::new();
        let qp = ctx.create_qp(c.blade(0), &cq, DoorbellBinding::DriverDefault, false);
        let off = c.blade(0).alloc(64, 8);
        let addr = RemoteAddr::new(c.blade(0).id(), off);
        let got = sim.block_on(async move {
            qp.post_send(
                vec![WorkRequest {
                    wr_id: 1,
                    op: OneSidedOp::Read { addr, len: 64 },
                }],
                0,
            )
            .await;
            qp.cq().wait_nonempty().await;
            qp.cq().poll(1).remove(0)
        });
        assert_eq!(got.result, OpResult::Error(CqeError::Timeout));
        assert_eq!(inj.stats().lost, 1);
    }

    #[test]
    fn scheduled_qp_error_flushes_and_blade_crash_times_out() {
        let mut sim = Simulation::new(2);
        let c = cluster(&sim);
        let plan = FaultPlan::new()
            .qp_error_at(Duration::from_micros(10), 0, None)
            .blade_crash_at(Duration::from_micros(30), 0, Duration::from_micros(5));
        let inj = FaultInjector::install(&c, plan);
        let ctx = c.compute(0).open_context(None);
        ctx.register_memory(1 << 20);
        let cq = Cq::new();
        let qp = ctx.create_qp(c.blade(0), &cq, DoorbellBinding::DriverDefault, false);
        sim.run_for(Duration::from_micros(20));
        assert!(qp.is_errored());
        assert!(!c.blade(0).is_crashed());
        sim.run_for(Duration::from_micros(12));
        assert!(c.blade(0).is_crashed());
        sim.run_for(Duration::from_micros(10));
        assert!(!c.blade(0).is_crashed(), "blade restarts after the window");
        assert_eq!(c.blade(0).epoch(), 1);
        let stats = inj.stats();
        assert_eq!(stats.qp_errors, 1);
        assert_eq!(stats.blade_crashes, 1);
    }

    #[test]
    fn post_restart_wr_fails_once_with_mr_revoked() {
        let mut sim = Simulation::new(3);
        let c = cluster(&sim);
        let plan =
            FaultPlan::new().blade_crash_at(Duration::from_micros(5), 0, Duration::from_micros(5));
        let inj = FaultInjector::install(&c, plan);
        let ctx = c.compute(0).open_context(None);
        ctx.register_memory(1 << 20);
        let cq = Cq::new();
        let qp = ctx.create_qp(c.blade(0), &cq, DoorbellBinding::DriverDefault, false);
        sim.run_for(Duration::from_micros(20));
        let off = c.blade(0).alloc(8, 8);
        let addr = RemoteAddr::new(c.blade(0).id(), off);
        let wr = |id| WorkRequest {
            wr_id: id,
            op: OneSidedOp::Read { addr, len: 8 },
        };
        assert_eq!(
            inj.on_wr(&qp, &wr(1)),
            InjectDecision::Fail(CqeError::MrRevoked)
        );
        assert_eq!(inj.on_wr(&qp, &wr(2)), InjectDecision::Deliver);
        assert_eq!(inj.stats().mr_revoked, 1);
    }

    #[test]
    fn injector_does_not_leak_qps() {
        let sim = Simulation::new(4);
        let c = cluster(&sim);
        let inj = FaultInjector::install(&c, FaultPlan::new());
        let ctx = c.compute(0).open_context(None);
        ctx.register_memory(1 << 20);
        let cq = Cq::new();
        let qp = ctx.create_qp(c.blade(0), &cq, DoorbellBinding::DriverDefault, false);
        assert_eq!(inj.qps.borrow().len(), 1);
        drop(qp);
        drop(ctx);
        assert!(
            inj.qps.borrow()[0].qp.upgrade().is_none(),
            "injector must hold only weak QP references"
        );
    }
}
