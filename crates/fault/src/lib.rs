#![warn(missing_docs)]

//! # smart-fault — deterministic fault injection for the SMART stack
//!
//! Memory-disaggregated applications live or die on how they handle
//! faults: a QP error transition flushes every outstanding work request,
//! a lost packet surfaces as a retransmit timeout, a crashed memory blade
//! takes whole data structures offline until it restarts. This crate adds
//! a **chaos layer** to the simulation so those paths can be exercised as
//! deterministically as the happy path.
//!
//! Two pieces:
//!
//! * [`FaultPlan`] — a declarative schedule of faults: per-work-request
//!   probabilities (packet loss, RNR rejections, latency spikes,
//!   permanent access errors) plus events at absolute virtual times
//!   (QP error transitions, blade crash/restart windows).
//!   [`FaultPlan::random`] generates seeded *healing* plans for sweep
//!   tests.
//! * [`FaultInjector`] — executes a plan against a live
//!   [`Cluster`](smart_rnic::Cluster) by implementing the RNIC model's
//!   [`FaultHook`](smart_rnic::FaultHook) checkpoint and driving scheduled
//!   events from a timeline task.
//!
//! Everything is derived from the simulation's seeded PRNG and virtual
//! clock, so a chaos run replayed with the same seed injects byte-for-byte
//! identical faults — and a plan with all rates at zero and no events is
//! *passive*: it draws nothing from the PRNG and perturbs nothing, making
//! the run identical to one with no injector installed.
//!
//! ```rust
//! use smart_fault::{FaultInjector, FaultPlan};
//! use smart_rnic::{Cluster, ClusterConfig};
//! use smart_rt::{Duration, Simulation};
//!
//! let mut sim = Simulation::new(7);
//! let cluster = Cluster::new(sim.handle(), ClusterConfig::new(2, 2));
//! let plan = FaultPlan::new()
//!     .with_packet_loss(0.01)
//!     .blade_crash_at(Duration::from_micros(50), 1, Duration::from_micros(20));
//! let injector = FaultInjector::install(&cluster, plan);
//! sim.run_for(Duration::from_micros(100));
//! assert_eq!(injector.stats().blade_crashes, 1);
//! ```
//!
//! Injected faults appear in traces under
//! [`Category::Fault`](smart_trace::Category::Fault), and the recovery
//! layer in the `smart` core crate (`SmartCoro::try_sync` + `RetryPolicy`)
//! turns retriable ones back into correct results.

mod injector;
mod plan;

pub use injector::{FaultInjector, FaultStats};
pub use plan::{FaultEvent, FaultEventKind, FaultPlan};
