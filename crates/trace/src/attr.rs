//! Op-scoped latency attribution: decomposes each application operation
//! into DB-lock wait / credit wait / pipeline / fabric / backoff components.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::LogHistogram;
use crate::{Actor, Category, ATTR_CATEGORIES};

/// An operation currently in flight for one `(tid, coro)` actor.
#[derive(Debug)]
struct OpenOp {
    kind: &'static str,
    start_ns: u64,
    cat_ns: [u64; ATTR_CATEGORIES],
}

/// Mutable attribution state owned by the sink.
#[derive(Debug, Default)]
pub(crate) struct Attribution {
    open: BTreeMap<(u64, u32), OpenOp>,
    kinds: BTreeMap<&'static str, OpKindStats>,
}

impl Attribution {
    /// Charges an attributed span to the actor's open operation, if any.
    pub(crate) fn add_span(&mut self, actor: Actor, cat: Category, dur_ns: u64) {
        let Some(i) = cat.attr_index() else {
            return;
        };
        if let Some(op) = self.open.get_mut(&(actor.tid, actor.coro)) {
            op.cat_ns[i] = op.cat_ns[i].saturating_add(dur_ns);
        }
    }

    /// Opens an operation scope for the actor (replacing any stale one).
    pub(crate) fn begin_op(&mut self, actor: Actor, kind: &'static str, t_ns: u64) {
        self.open.insert(
            (actor.tid, actor.coro),
            OpenOp {
                kind,
                start_ns: t_ns,
                cat_ns: [0; ATTR_CATEGORIES],
            },
        );
    }

    /// Closes the actor's operation scope, folding it into the per-kind
    /// aggregates. Returns `(kind, start_ns)` if a scope was open.
    pub(crate) fn end_op(&mut self, actor: Actor, t_ns: u64) -> Option<(&'static str, u64)> {
        let op = self.open.remove(&(actor.tid, actor.coro))?;
        let total = t_ns.saturating_sub(op.start_ns);
        let stats = self.kinds.entry(op.kind).or_default();
        stats.count += 1;
        stats.total_ns = stats.total_ns.saturating_add(total);
        stats.total.record(total);
        for i in 0..ATTR_CATEGORIES {
            stats.cat_ns[i] = stats.cat_ns[i].saturating_add(op.cat_ns[i]);
            stats.cat_hist[i].record(op.cat_ns[i]);
        }
        Some((op.kind, op.start_ns))
    }

    /// Clones the completed-op aggregates into an immutable report.
    pub(crate) fn snapshot(&self) -> AttributionReport {
        AttributionReport {
            kinds: self.kinds.clone(),
        }
    }
}

/// Aggregated latency statistics for one operation kind (`"ht_get"`,
/// `"dtx_txn"`, …).
#[derive(Clone, Debug)]
pub struct OpKindStats {
    count: u64,
    total_ns: u64,
    total: LogHistogram,
    cat_ns: [u64; ATTR_CATEGORIES],
    cat_hist: [LogHistogram; ATTR_CATEGORIES],
}

impl Default for OpKindStats {
    fn default() -> Self {
        OpKindStats {
            count: 0,
            total_ns: 0,
            total: LogHistogram::new(),
            cat_ns: [0; ATTR_CATEGORIES],
            cat_hist: [
                LogHistogram::new(),
                LogHistogram::new(),
                LogHistogram::new(),
                LogHistogram::new(),
                LogHistogram::new(),
            ],
        }
    }
}

impl OpKindStats {
    /// Number of completed operations of this kind.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of end-to-end operation latencies, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Histogram of end-to-end operation latencies.
    pub fn total_hist(&self) -> &LogHistogram {
        &self.total
    }

    /// Total nanoseconds attributed to `cat` across all operations of this
    /// kind (0 for non-attributed categories).
    pub fn category_ns(&self, cat: Category) -> u64 {
        cat.attr_index().map_or(0, |i| self.cat_ns[i])
    }

    /// Per-operation histogram of time attributed to `cat`.
    ///
    /// # Panics
    ///
    /// Panics if `cat` is not an attributed category.
    pub fn category_hist(&self, cat: Category) -> &LogHistogram {
        &self.cat_hist[cat.attr_index().expect("attributed category")]
    }

    /// Fraction of total op latency attributed to `cat` (0.0 when no ops
    /// completed). Components recorded by concurrently outstanding work
    /// requests overlap in time, so the shares of one kind may sum past 1.0.
    pub fn share(&self, cat: Category) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.category_ns(cat) as f64 / self.total_ns as f64
        }
    }
}

/// Immutable snapshot of the attribution aggregates, keyed by op kind.
#[derive(Clone, Debug, Default)]
pub struct AttributionReport {
    kinds: BTreeMap<&'static str, OpKindStats>,
}

impl AttributionReport {
    /// Stats for one op kind, if any such ops completed.
    pub fn kind(&self, name: &str) -> Option<&OpKindStats> {
        self.kinds.get(name)
    }

    /// Iterates over all op kinds in deterministic (sorted) order.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, &OpKindStats)> {
        self.kinds.iter().map(|(k, v)| (*k, v))
    }

    /// True when no operations completed.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Renders the plain-text attribution report printed by bench runners.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== smart-trace attribution ==============================================\n");
        if self.kinds.is_empty() {
            out.push_str("(no completed operations)\n");
            return out;
        }
        for (kind, s) in &self.kinds {
            let _ = writeln!(
                out,
                "op {kind}: {} ops, mean {}, p50 {}, p90 {}, p99 {}, p999 {}",
                s.count,
                fmt_ns(s.total.mean()),
                fmt_ns(s.total.percentile(500)),
                fmt_ns(s.total.percentile(900)),
                fmt_ns(s.total.percentile(990)),
                fmt_ns(s.total.percentile(999)),
            );
            let mut covered = 0u64;
            for i in 0..ATTR_CATEGORIES {
                let cat = Category::from_attr_index(i);
                covered = covered.saturating_add(s.cat_ns[i]);
                let _ = writeln!(
                    out,
                    "  {:<9} {:>6} of op latency (mean/op {}, p99/op {})",
                    cat.label(),
                    fmt_share(s.share(cat)),
                    fmt_ns(s.cat_hist[i].mean()),
                    fmt_ns(s.cat_hist[i].percentile(990)),
                );
            }
            // Attributed components of concurrent work requests overlap, so
            // coverage can exceed 100 %; anything below 100 % is host CPU,
            // completion polling and queueing not covered by a category.
            let pct10 = (covered.saturating_mul(1000)) / s.total_ns.max(1);
            let _ = writeln!(
                out,
                "  coverage  {:>3}.{}% of op latency attributed",
                pct10 / 10,
                pct10 % 10
            );
        }
        out
    }
}

/// Formats nanoseconds with a deterministic integer-only `us`/`ns` rendering.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000 {
        format!("{}.{:03}us", ns / 1_000, ns % 1_000)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_share(share: f64) -> String {
    format!("{:.1}%", share * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_outside_an_op_are_dropped() {
        let mut a = Attribution::default();
        a.add_span(Actor::thread(1), Category::DbLock, 100);
        assert!(a.snapshot().is_empty());
        a.begin_op(Actor::thread(1), "ht_get", 0);
        a.end_op(Actor::thread(1), 50);
        let r = a.snapshot();
        assert_eq!(r.kind("ht_get").unwrap().category_ns(Category::DbLock), 0);
    }

    #[test]
    fn attribution_sums_per_category_and_kind() {
        let mut a = Attribution::default();
        let actor = Actor::new(1, 2);
        a.begin_op(actor, "ht_get", 100);
        a.add_span(actor, Category::DbLock, 30);
        a.add_span(actor, Category::Fabric, 50);
        a.add_span(actor, Category::DbLock, 10);
        // A different coroutine's spans must not leak in.
        a.add_span(Actor::new(1, 3), Category::DbLock, 999);
        // Non-attributed categories never count.
        a.add_span(actor, Category::Cache, 777);
        assert_eq!(a.end_op(actor, 200), Some(("ht_get", 100)));
        let r = a.snapshot();
        let s = r.kind("ht_get").unwrap();
        assert_eq!(s.count(), 1);
        assert_eq!(s.total_ns(), 100);
        assert_eq!(s.category_ns(Category::DbLock), 40);
        assert_eq!(s.category_ns(Category::Fabric), 50);
        assert_eq!(s.category_ns(Category::Cache), 0);
        assert!((s.share(Category::DbLock) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn end_without_begin_is_ignored() {
        let mut a = Attribution::default();
        assert_eq!(a.end_op(Actor::thread(9), 500), None);
        assert!(a.snapshot().is_empty());
    }

    #[test]
    fn report_renders_all_categories() {
        let mut a = Attribution::default();
        let actor = Actor::thread(4);
        a.begin_op(actor, "dtx_txn", 0);
        a.add_span(actor, Category::Credit, 400);
        a.add_span(actor, Category::Backoff, 100);
        a.end_op(actor, 1_000);
        let text = a.snapshot().render();
        for label in ["db_lock", "credit", "pipeline", "fabric", "backoff"] {
            assert!(text.contains(label), "missing {label} in:\n{text}");
        }
        assert!(text.contains("dtx_txn"));
        assert!(text.contains("40.0%"), "credit share missing in:\n{text}");
        assert!(text.contains("coverage"));
    }
}
