//! # smart-trace — deterministic simulation-time tracing
//!
//! A zero-dependency tracing subsystem for the SMART simulation stack. It
//! records typed events — completed spans, instants and counter samples —
//! stamped with the *simulated* time (raw nanoseconds, compatible with
//! `smart_rt::SimTime::as_nanos`) and the identity of the simulated thread
//! and coroutine that produced them. Because no wall-clock or OS state ever
//! enters an event, the trace buffer produced by a run is a pure function of
//! the simulation seed: two same-seed runs export byte-identical JSON, which
//! makes the trace itself a determinism oracle.
//!
//! The crate has three layers:
//!
//! * [`TraceSink`] — a cheaply cloneable `Rc` ring-buffer recorder with a
//!   bounded capacity and a per-[`Category`] filter mask. When disabled (or
//!   when a category is masked out) every record call is a couple of `Cell`
//!   reads and an early return, so instrumentation can stay compiled in.
//! * op-scoped **latency attribution** ([`AttributionReport`]) — callers
//!   bracket each application operation with [`TraceSink::begin_op`] /
//!   [`TraceSink::end_op`]; span durations recorded in between are summed
//!   per attribution category (DB-lock wait, credit wait, pipeline, fabric,
//!   backoff) and folded into log-bucketed HDR-style histograms
//!   ([`LogHistogram`], p50/p90/p99/p999).
//! * exporters — [`chrome_trace_json`] emits Chrome trace-event JSON
//!   (loadable in Perfetto or `chrome://tracing`, one track per simulated
//!   thread) and [`AttributionReport::render`] produces the plain-text
//!   report printed by the bench runners.
//!
//! This crate sits *below* `smart-rt` in the dependency order so the runtime
//! and every layer above it can emit events; it therefore speaks raw `u64`
//! nanoseconds rather than `SimTime`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod attr;
mod chrome;
mod hist;
mod sink;

pub use attr::{AttributionReport, OpKindStats};
pub use chrome::chrome_trace_json;
pub use hist::LogHistogram;
pub use sink::TraceSink;

/// Identity of the simulated execution context that emitted an event.
///
/// `tid` is a stable simulated-thread identifier (by convention
/// `node_id << 32 | thread_index`, so the Chrome exporter can split it back
/// into a process/thread pair) and `coro` is the coroutine index within that
/// thread. Background tasks that belong to no thread use [`Actor::SYSTEM`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Actor {
    /// Stable simulated-thread id (`node_id << 32 | thread_index`).
    pub tid: u64,
    /// Coroutine index within the thread, 0 for thread-level events.
    pub coro: u32,
}

impl Actor {
    /// Actor used by background/system tasks (tuners, controllers) that do
    /// not belong to any simulated application thread.
    pub const SYSTEM: Actor = Actor {
        tid: u64::MAX,
        coro: 0,
    };

    /// Builds an actor from a thread id and a coroutine index.
    pub fn new(tid: u64, coro: u32) -> Actor {
        Actor { tid, coro }
    }

    /// Builds a thread-level actor (coroutine index 0).
    pub fn thread(tid: u64) -> Actor {
        Actor { tid, coro: 0 }
    }
}

/// Event category, used both for filtering (see [`TraceSink::set_mask`]) and
/// for latency attribution.
///
/// The first five categories are the *attributed* ones: span durations
/// recorded under them are charged to the enclosing operation opened with
/// [`TraceSink::begin_op`]. The remaining categories annotate the timeline
/// without entering the attribution sums.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Category {
    /// Waiting for / holding a doorbell or QP spinlock (the paper's
    /// "DB lock" component).
    DbLock = 0,
    /// Waiting for a work-request credit or a coroutine slot.
    Credit = 1,
    /// RNIC processing-unit or blade service-pipeline occupancy.
    Pipeline = 2,
    /// Time on the wire: PCIe transfers, network ingress/egress, flight
    /// latency.
    Fabric = 3,
    /// Conflict-avoidance backoff sleeps.
    Backoff = 4,
    /// WQE / MTT cache hit-miss annotations.
    Cache = 5,
    /// Tuning decisions (chosen `C_max`, `t_max` updates).
    Tune = 6,
    /// Operation scopes themselves (one span per `begin_op`/`end_op` pair).
    Op = 7,
    /// Synchronization probes (lock acquire/release, shared-cell
    /// read/write/CAS) consumed by the `smart-check` sanitizers. Masked out
    /// by [`TraceSink::DEFAULT_MASK`]; checkers opt in with
    /// [`TraceSink::set_mask`].
    Sync = 8,
    /// Fault-injection and recovery events (`smart-fault`): injected error
    /// completions, retry backoffs, QP re-establishment, blade
    /// crash/restart.
    Fault = 9,
    /// Serving-layer lifecycle events (`smart-serve`): phase transitions,
    /// admission decisions (sheds), and membership leave/join markers.
    Serve = 10,
}

/// Number of categories that participate in latency attribution.
pub const ATTR_CATEGORIES: usize = 5;

impl Category {
    /// All categories, in declaration order.
    pub const ALL: [Category; 11] = [
        Category::DbLock,
        Category::Credit,
        Category::Pipeline,
        Category::Fabric,
        Category::Backoff,
        Category::Cache,
        Category::Tune,
        Category::Op,
        Category::Sync,
        Category::Fault,
        Category::Serve,
    ];

    /// The bit this category occupies in a filter mask.
    pub const fn bit(self) -> u32 {
        1 << (self as u8)
    }

    /// Index into the attribution sums, `None` for non-attributed
    /// categories.
    pub fn attr_index(self) -> Option<usize> {
        let i = self as usize;
        if i < ATTR_CATEGORIES {
            Some(i)
        } else {
            None
        }
    }

    /// The attributed category at index `i` (inverse of [`attr_index`]).
    ///
    /// [`attr_index`]: Category::attr_index
    pub fn from_attr_index(i: usize) -> Category {
        Category::ALL[i]
    }

    /// Stable lowercase label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            Category::DbLock => "db_lock",
            Category::Credit => "credit",
            Category::Pipeline => "pipeline",
            Category::Fabric => "fabric",
            Category::Backoff => "backoff",
            Category::Cache => "cache",
            Category::Tune => "tune",
            Category::Op => "op",
            Category::Sync => "sync",
            Category::Fault => "fault",
            Category::Serve => "serve",
        }
    }
}

/// What a [`Category::Sync`] probe event observed.
///
/// Probes travel as instants whose [`Args`] carry `("sync", op.code())` and
/// `("id", cell_or_lock_id)`; the event name is the semantic object name
/// (`"qp_lock"`, `"race_slot"`, `"c_max_epoch"`, …). `Acquire`/`Release`
/// describe lock-like objects; `Read`/`Write`/`Cas` describe shared cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SyncOp {
    /// Observed (read) a shared cell.
    Read,
    /// Blind write to a shared cell.
    Write,
    /// Atomic compare-and-swap on a shared cell.
    Cas,
    /// Acquired a lock or semaphore permit.
    Acquire,
    /// Released a lock or semaphore permit.
    Release,
}

impl SyncOp {
    /// Stable wire code carried in the probe event's [`Args`].
    pub fn code(self) -> u64 {
        match self {
            SyncOp::Read => 0,
            SyncOp::Write => 1,
            SyncOp::Cas => 2,
            SyncOp::Acquire => 3,
            SyncOp::Release => 4,
        }
    }

    /// Inverse of [`SyncOp::code`].
    pub fn from_code(code: u64) -> Option<SyncOp> {
        match code {
            0 => Some(SyncOp::Read),
            1 => Some(SyncOp::Write),
            2 => Some(SyncOp::Cas),
            3 => Some(SyncOp::Acquire),
            4 => Some(SyncOp::Release),
            _ => None,
        }
    }

    /// Short human-readable label used in findings reports.
    pub fn label(self) -> &'static str {
        match self {
            SyncOp::Read => "rd",
            SyncOp::Write => "wr",
            SyncOp::Cas => "cas",
            SyncOp::Acquire => "acq",
            SyncOp::Release => "rel",
        }
    }
}

/// Up to two optional key/value annotations attached to an event.
///
/// Keys are `&'static str` so recording never allocates; values are raw
/// `u64`s. Both exporters print them in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Args(pub [Option<(&'static str, u64)>; 2]);

impl Args {
    /// No annotations.
    pub const NONE: Args = Args([None, None]);

    /// A single key/value annotation.
    pub fn one(k: &'static str, v: u64) -> Args {
        Args([Some((k, v)), None])
    }

    /// Two key/value annotations.
    pub fn two(k1: &'static str, v1: u64, k2: &'static str, v2: u64) -> Args {
        Args([Some((k1, v1)), Some((k2, v2))])
    }
}

/// A recorded trace event.
///
/// Spans are recorded as *completed* intervals (start + duration) at the
/// moment the instrumented primitive reserves its service window — the
/// simulation's queueing model always knows the completion time up front —
/// so the event order in the ring equals the deterministic call order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A completed interval (lock section, credit wait, service window…).
    Span {
        /// Start of the interval, in simulated nanoseconds.
        t_ns: u64,
        /// Length of the interval, in nanoseconds.
        dur_ns: u64,
        /// Who executed the interval.
        actor: Actor,
        /// Category, also the attribution bucket for attributed categories.
        cat: Category,
        /// Short static name (`"qp_lock"`, `"net_req"`, …).
        name: &'static str,
        /// Optional annotations.
        args: Args,
    },
    /// A point-in-time annotation (cache miss, CQE delivery…).
    Instant {
        /// When it happened, in simulated nanoseconds.
        t_ns: u64,
        /// Who observed it.
        actor: Actor,
        /// Category (filter bucket only; instants are never attributed).
        cat: Category,
        /// Short static name.
        name: &'static str,
        /// Optional annotations.
        args: Args,
    },
    /// A sampled counter value (chosen `C_max`, `t_max`…).
    Counter {
        /// Sample time, in simulated nanoseconds.
        t_ns: u64,
        /// Who sampled it ([`Actor::SYSTEM`] for background tuners).
        actor: Actor,
        /// Category (filter bucket only).
        cat: Category,
        /// Counter name.
        name: &'static str,
        /// Sampled value.
        value: u64,
    },
}

impl TraceEvent {
    /// The actor that produced the event.
    pub fn actor(&self) -> Actor {
        match self {
            TraceEvent::Span { actor, .. }
            | TraceEvent::Instant { actor, .. }
            | TraceEvent::Counter { actor, .. } => *actor,
        }
    }

    /// The event timestamp in simulated nanoseconds (span start for spans).
    pub fn t_ns(&self) -> u64 {
        match self {
            TraceEvent::Span { t_ns, .. }
            | TraceEvent::Instant { t_ns, .. }
            | TraceEvent::Counter { t_ns, .. } => *t_ns,
        }
    }

    /// The event name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Span { name, .. }
            | TraceEvent::Instant { name, .. }
            | TraceEvent::Counter { name, .. } => name,
        }
    }

    /// The event category.
    pub fn category(&self) -> Category {
        match self {
            TraceEvent::Span { cat, .. }
            | TraceEvent::Instant { cat, .. }
            | TraceEvent::Counter { cat, .. } => *cat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_bits_are_distinct() {
        let mut mask = 0u32;
        for cat in Category::ALL {
            assert_eq!(mask & cat.bit(), 0, "duplicate bit for {cat:?}");
            mask |= cat.bit();
        }
        assert_eq!(mask.count_ones() as usize, Category::ALL.len());
    }

    #[test]
    fn attr_index_roundtrip() {
        for i in 0..ATTR_CATEGORIES {
            assert_eq!(Category::from_attr_index(i).attr_index(), Some(i));
        }
        assert_eq!(Category::Cache.attr_index(), None);
        assert_eq!(Category::Tune.attr_index(), None);
        assert_eq!(Category::Op.attr_index(), None);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Category::DbLock.label(), "db_lock");
        assert_eq!(Category::Credit.label(), "credit");
        assert_eq!(Category::Pipeline.label(), "pipeline");
        assert_eq!(Category::Fabric.label(), "fabric");
        assert_eq!(Category::Backoff.label(), "backoff");
    }

    #[test]
    fn sync_op_codes_roundtrip() {
        for op in [
            SyncOp::Read,
            SyncOp::Write,
            SyncOp::Cas,
            SyncOp::Acquire,
            SyncOp::Release,
        ] {
            assert_eq!(SyncOp::from_code(op.code()), Some(op));
        }
        assert_eq!(SyncOp::from_code(99), None);
        assert_eq!(Category::Sync.label(), "sync");
        assert_eq!(Category::Sync.attr_index(), None);
    }

    #[test]
    fn actor_constructors() {
        let a = Actor::new(7, 3);
        assert_eq!(a.tid, 7);
        assert_eq!(a.coro, 3);
        assert_eq!(Actor::thread(7).coro, 0);
        assert_eq!(Actor::SYSTEM.tid, u64::MAX);
    }

    #[test]
    fn event_accessors() {
        let ev = TraceEvent::Span {
            t_ns: 10,
            dur_ns: 5,
            actor: Actor::thread(1),
            cat: Category::DbLock,
            name: "qp_lock",
            args: Args::one("wait_ns", 3),
        };
        assert_eq!(ev.t_ns(), 10);
        assert_eq!(ev.name(), "qp_lock");
        assert_eq!(ev.category(), Category::DbLock);
        assert_eq!(ev.actor(), Actor::thread(1));
    }
}
