//! Chrome trace-event JSON exporter (Perfetto / `chrome://tracing`).
//!
//! Output is deterministic by construction: events are written in buffer
//! order, metadata records in sorted-tid order, and all numbers are
//! formatted with integer arithmetic (`ts`/`dur` are microseconds with a
//! fixed three-decimal fraction), so a same-seed run re-exports the exact
//! same bytes.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::{Args, TraceEvent};

fn pid_of(tid: u64) -> u32 {
    (tid >> 32) as u32
}

fn tid_of(tid: u64) -> u32 {
    tid as u32
}

/// Writes nanoseconds as microseconds with exactly three decimals.
fn write_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

fn write_head(out: &mut String, ph: char, tid: u64, ts_ns: u64) {
    let _ = write!(
        out,
        "{{\"ph\":\"{ph}\",\"pid\":{},\"tid\":{},\"ts\":",
        pid_of(tid),
        tid_of(tid)
    );
    write_us(out, ts_ns);
}

fn write_args(out: &mut String, coro: u32, args: Args) {
    let _ = write!(out, "\"args\":{{\"coro\":{coro}");
    for (k, v) in args.0.iter().flatten() {
        let _ = write!(out, ",\"{k}\":{v}");
    }
    out.push_str("}}");
}

/// Renders events as a Chrome trace-event JSON document.
///
/// One track is emitted per simulated thread: the actor's `tid` splits into
/// Chrome's `pid` (`node_id`, high 32 bits) and `tid` (thread index, low 32
/// bits), and a `thread_name` metadata record labels each track
/// (`"n<node>.t<thread>"`, or `"background"` for [`crate::Actor::SYSTEM`]).
/// Spans become `"X"` complete events, instants `"i"` thread-scoped
/// events, counters `"C"` counter events; the coroutine index and any
/// event [`Args`] travel in `args`. Event names must be JSON-safe ASCII
/// identifiers (they are `&'static str` chosen by instrumentation code,
/// never user data, so no escaping is performed).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };

    let tids: BTreeSet<u64> = events.iter().map(|ev| ev.actor().tid).collect();
    for tid in tids {
        sep(&mut out);
        let name = if tid == u64::MAX {
            "background".to_string()
        } else {
            format!("n{}.t{}", pid_of(tid), tid_of(tid))
        };
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{name}\"}}}}",
            pid_of(tid),
            tid_of(tid),
        );
    }

    for ev in events {
        sep(&mut out);
        match *ev {
            TraceEvent::Span {
                t_ns,
                dur_ns,
                actor,
                cat,
                name,
                args,
            } => {
                write_head(&mut out, 'X', actor.tid, t_ns);
                out.push_str(",\"dur\":");
                write_us(&mut out, dur_ns);
                let _ = write!(out, ",\"cat\":\"{}\",\"name\":\"{name}\",", cat.label());
                write_args(&mut out, actor.coro, args);
            }
            TraceEvent::Instant {
                t_ns,
                actor,
                cat,
                name,
                args,
            } => {
                write_head(&mut out, 'i', actor.tid, t_ns);
                let _ = write!(
                    out,
                    ",\"s\":\"t\",\"cat\":\"{}\",\"name\":\"{name}\",",
                    cat.label()
                );
                write_args(&mut out, actor.coro, args);
            }
            TraceEvent::Counter {
                t_ns,
                actor,
                cat,
                name,
                value,
            } => {
                write_head(&mut out, 'C', actor.tid, t_ns);
                let _ = write!(
                    out,
                    ",\"cat\":\"{}\",\"name\":\"{name}\",\"args\":{{\"value\":{value}}}}}",
                    cat.label()
                );
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Actor, Category};

    #[test]
    fn empty_trace_is_valid_shell() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[]}");
    }

    #[test]
    fn microsecond_formatting_is_fixed_width_fraction() {
        let mut s = String::new();
        write_us(&mut s, 0);
        s.push(' ');
        write_us(&mut s, 1);
        s.push(' ');
        write_us(&mut s, 1_234_567);
        assert_eq!(s, "0.000 0.001 1234.567");
    }

    #[test]
    fn span_and_metadata_layout() {
        let ev = TraceEvent::Span {
            t_ns: 2_500,
            dur_ns: 750,
            actor: Actor::new((3 << 32) | 4, 1),
            cat: Category::DbLock,
            name: "qp_lock",
            args: Args::one("wait_ns", 500),
        };
        let json = chrome_trace_json(&[ev]);
        assert_eq!(
            json,
            concat!(
                "{\"traceEvents\":[",
                "{\"ph\":\"M\",\"pid\":3,\"tid\":4,\"name\":\"thread_name\",",
                "\"args\":{\"name\":\"n3.t4\"}},",
                "{\"ph\":\"X\",\"pid\":3,\"tid\":4,\"ts\":2.500,\"dur\":0.750,",
                "\"cat\":\"db_lock\",\"name\":\"qp_lock\",",
                "\"args\":{\"coro\":1,\"wait_ns\":500}}",
                "]}"
            )
        );
    }

    #[test]
    fn system_actor_gets_background_track() {
        let ev = TraceEvent::Counter {
            t_ns: 1_000,
            actor: Actor::SYSTEM,
            cat: Category::Tune,
            name: "c_max",
            value: 16,
        };
        let json = chrome_trace_json(&[ev]);
        assert!(json.contains("\"name\":\"background\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("{\"value\":16}"));
        assert!(json.contains("\"pid\":4294967295"));
    }

    #[test]
    fn instants_are_thread_scoped() {
        let ev = TraceEvent::Instant {
            t_ns: 10,
            actor: Actor::thread(1),
            cat: Category::Cache,
            name: "wqe_miss",
            args: Args::NONE,
        };
        let json = chrome_trace_json(&[ev]);
        assert!(json.contains("\"ph\":\"i\",\"pid\":0,\"tid\":1,\"ts\":0.010,\"s\":\"t\""));
        assert!(json.contains("\"args\":{\"coro\":0}"));
    }
}
