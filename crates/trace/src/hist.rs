//! Log-bucketed HDR-style histogram with integer-only percentile queries.

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, giving ≤ 12.5 % relative error.
const SUB_BITS: u32 = 3;
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Total number of buckets needed to cover the full `u64` range: values
/// below 16 get exact unit buckets, every following octave contributes
/// `SUB_COUNT` buckets up to the 2^63 octave.
const BUCKETS: usize = 16 + (60 << SUB_BITS) as usize;

fn bucket_index(v: u64) -> usize {
    if v < 2 * SUB_COUNT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = ((v >> (msb - SUB_BITS)) & (SUB_COUNT - 1)) as usize;
        ((((msb - SUB_BITS) as usize) << SUB_BITS) + 8) + sub
    }
}

fn bucket_low_edge(b: usize) -> u64 {
    if b < 2 * SUB_COUNT as usize {
        b as u64
    } else {
        let oct = ((b - 8) >> SUB_BITS) as u32 + SUB_BITS;
        let sub = (b as u64) & (SUB_COUNT - 1);
        (SUB_COUNT + sub) << (oct - SUB_BITS)
    }
}

/// A log-bucketed histogram of `u64` samples (nanoseconds, by convention).
///
/// Values below 16 are recorded exactly; larger values fall into one of
/// eight linear sub-buckets per power-of-two octave, so percentile queries
/// carry at most ~12.5 % relative error while the whole structure stays a
/// flat array of counts — no allocation per sample, no floating point in
/// the record or query paths, fully deterministic.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample, 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Integer mean of the samples, 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Folds another histogram's samples into this one (bucket-wise; the
    /// merged percentiles are exactly those of the combined sample set).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Bucket-wise difference against an earlier snapshot of the same
    /// histogram: the samples recorded *after* `earlier` was cloned.
    ///
    /// Both histograms must describe the same monotonically growing
    /// recorder (every bucket of `earlier` ≤ the corresponding bucket of
    /// `self`); counts and sums subtract exactly. The true maximum of the
    /// interval is not recoverable from bucket counts alone, so the
    /// result's `max` is the low edge of its highest non-empty bucket
    /// capped at `self.max()` — an upper bound consistent with the
    /// resolution of every other query.
    pub fn diff(&self, earlier: &LogHistogram) -> LogHistogram {
        let mut out = LogHistogram::new();
        let mut top = None;
        for (i, (a, b)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            let d = a.saturating_sub(*b);
            out.buckets[i] = d;
            if d > 0 {
                top = Some(i);
            }
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out.max = top.map_or(0, |i| bucket_low_edge(i).min(self.max));
        out
    }

    /// The value at the given permille rank (`500` = p50, `999` = p99.9).
    ///
    /// Returns the low edge of the bucket containing the rank-th sample
    /// (capped at the observed maximum), 0 for an empty histogram.
    pub fn percentile(&self, permille: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let permille = permille.min(1000) as u64;
        let rank = ((self.count * permille).div_ceil(1000)).max(1);
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return bucket_low_edge(i).min(self.max);
            }
        }
        self.max
    }

    /// The value at quantile `q` ∈ [0, 1], linearly interpolated inside
    /// the containing bucket.
    ///
    /// Where [`percentile`] answers with the low edge of the bucket that
    /// holds the rank-th sample, `quantile` assumes the samples of that
    /// bucket are spread uniformly across its width and interpolates the
    /// fractional rank `q · (count − 1)` into it, so adjacent quantile
    /// queries move smoothly instead of in bucket-width steps. The result
    /// is clamped to the observed maximum; an empty histogram yields 0.
    ///
    /// [`percentile`]: LogHistogram::percentile
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Fractional rank into the sorted sample sequence, 0-based.
        let rank = q * (self.count - 1) as f64;
        let lo = rank.floor() as u64;
        let frac = rank - lo as f64;
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            // Samples lo-rank .. acc + c - 1 live in bucket i.
            if acc + c > lo {
                let pos_in_bucket = (lo - acc) as f64 + frac;
                let width = self.bucket_width(i);
                let interp = bucket_low_edge(i) as f64 + width * (pos_in_bucket + 0.5) / c as f64;
                return (interp as u64).min(self.max);
            }
            acc += c;
        }
        self.max
    }

    /// Width in value units of bucket `i` (distance to the next edge).
    fn bucket_width(&self, i: usize) -> f64 {
        if i + 1 < BUCKETS {
            (bucket_low_edge(i + 1) - bucket_low_edge(i)) as f64
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_monotonic_and_consistent() {
        // Every bucket's low edge maps back to the same bucket, and edges
        // strictly increase.
        let mut prev = None;
        for b in 0..BUCKETS {
            let edge = bucket_low_edge(b);
            assert_eq!(bucket_index(edge), b, "low edge of bucket {b}");
            if let Some(p) = prev {
                assert!(edge > p, "edges must increase at bucket {b}");
            }
            prev = Some(edge);
        }
    }

    #[test]
    fn boundary_values_map_into_range() {
        for v in [0, 1, 15, 16, 17, 31, 32, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let b = bucket_index(v);
            assert!(b < BUCKETS, "bucket {b} out of range for {v}");
            assert!(bucket_low_edge(b) <= v, "low edge above value {v}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for p in 1..=15u32 {
            // The p-th sample of 0..16 at permille p*1000/16 is exact.
            assert_eq!(h.percentile(p * 1000 / 16), (p - 1) as u64);
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(500);
        let p99 = h.percentile(990);
        // 12.5 % relative error bound from the 8-sub-bucket octaves.
        assert!((440..=500).contains(&p50), "p50 = {p50}");
        assert!((870..=990).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        assert!((900..=1000).contains(&h.percentile(1000)));
        assert_eq!(h.count(), 1000);
        assert_eq!(h.mean(), 500);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let (mut a, mut b, mut all) = (
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
        );
        for v in 1..=500u64 {
            a.record(v * 3);
            all.record(v * 3);
        }
        for v in 1..=200u64 {
            b.record(v * 7);
            all.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.max(), all.max());
        for p in [10, 500, 900, 990, 1000] {
            assert_eq!(a.percentile(p), all.percentile(p), "permille {p}");
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(500), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = LogHistogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
    }

    #[test]
    fn quantile_interpolates_inside_a_single_bucket() {
        // 12_345 lands in one log bucket; every quantile must stay inside
        // that bucket's edges and never exceed the recorded maximum.
        let mut h = LogHistogram::new();
        for _ in 0..100 {
            h.record(12_345);
        }
        let b = bucket_index(12_345);
        let (lo, hi) = (bucket_low_edge(b), bucket_low_edge(b + 1));
        let mut prev = 0;
        for q in [0.0, 0.25, 0.5, 0.75, 0.999, 1.0] {
            let v = h.quantile(q);
            assert!(v >= lo, "quantile({q}) = {v} below bucket edge {lo}");
            assert!(v < hi, "quantile({q}) = {v} above bucket edge {hi}");
            assert!(v <= h.max(), "quantile({q}) above observed max");
            assert!(v >= prev, "quantile must be monotone in q");
            prev = v;
        }
        // Out-of-range inputs clamp instead of panicking.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
    }

    #[test]
    fn quantile_tracks_uniform_ramp_within_bucket_error() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.10, 1_000.0), (0.50, 5_000.0), (0.90, 9_000.0)] {
            let v = h.quantile(q) as f64;
            let err = (v - expect).abs() / expect;
            assert!(err <= 0.13, "quantile({q}) = {v}, expected ~{expect}");
        }
        assert_eq!(h.quantile(1.0), 10_000);
    }

    #[test]
    fn quantile_of_merged_equals_combined_recording() {
        let (mut a, mut b, mut all) = (
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
        );
        for v in 1..=300u64 {
            a.record(v * 5);
            all.record(v * 5);
        }
        for v in 1..=700u64 {
            b.record(v * 2);
            all.record(v * 2);
        }
        a.merge(&b);
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "quantile {q}");
        }
    }

    #[test]
    fn diff_recovers_the_samples_recorded_after_a_snapshot() {
        let mut h = LogHistogram::new();
        for v in 1..=400u64 {
            h.record(v * 3);
        }
        let snap = h.clone();
        let mut fresh = LogHistogram::new();
        for v in 1..=250u64 {
            h.record(v * 11);
            fresh.record(v * 11);
        }
        let d = h.diff(&snap);
        assert_eq!(d.count(), fresh.count());
        assert_eq!(d.sum(), fresh.sum());
        for p in [100, 500, 900, 990, 1000] {
            assert_eq!(d.percentile(p), fresh.percentile(p), "permille {p}");
        }
        // Self-diff is empty; diff against an empty snapshot is identity.
        assert_eq!(h.diff(&h).count(), 0);
        let id = h.diff(&LogHistogram::new());
        assert_eq!(id.count(), h.count());
        assert_eq!(id.percentile(500), h.percentile(500));
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut h = LogHistogram::new();
        h.record(12_345);
        for p in [1, 500, 900, 990, 999, 1000] {
            let v = h.percentile(p);
            assert!(v <= 12_345, "percentile above sample");
            assert!(v >= 12_288, "percentile {v} too far below sample");
        }
    }
}
