//! The `TraceSink` ring-buffer recorder.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use crate::attr::{Attribution, AttributionReport};
use crate::{Actor, Args, Category, SyncOp, TraceEvent};

#[derive(Debug)]
struct SinkInner {
    enabled: Cell<bool>,
    mask: Cell<u32>,
    capacity: usize,
    events: RefCell<VecDeque<TraceEvent>>,
    dropped: Cell<u64>,
    attr: RefCell<Attribution>,
}

/// A cheaply cloneable, bounded, filterable recorder of [`TraceEvent`]s.
///
/// Clones share state (`Rc`), so a bench can hand one clone to the
/// simulation and keep another to export from afterwards. When the ring is
/// full the oldest event is evicted ([`TraceSink::dropped`] counts
/// evictions); the attribution aggregates are *not* ring-bounded — every
/// recorded span still feeds the per-op sums.
///
/// Overhead policy: every record call first checks `enabled` and the
/// category mask (two `Cell` reads); a disabled sink therefore costs a few
/// branches per call and allocates nothing, which is what keeps the
/// instrumentation compiled into the hot paths at all times. Recording
/// never advances simulated time, so enabling tracing cannot change any
/// measured throughput or latency.
#[derive(Clone, Debug)]
pub struct TraceSink {
    inner: Rc<SinkInner>,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    /// Default ring capacity (events), used by [`TraceSink::new`].
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Default category mask: everything except [`Category::Sync`]. Sync
    /// probes exist for the `smart-check` sanitizers and would otherwise
    /// flood the ring (and the Chrome export) of every traced bench run;
    /// checkers enable them with
    /// `set_mask(DEFAULT_MASK | Category::Sync.bit())`.
    pub const DEFAULT_MASK: u32 = !Category::Sync.bit();

    /// Creates an enabled sink with [`TraceSink::DEFAULT_CAPACITY`].
    pub fn new() -> TraceSink {
        TraceSink::with_capacity(TraceSink::DEFAULT_CAPACITY)
    }

    /// Creates an enabled sink holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> TraceSink {
        TraceSink {
            inner: Rc::new(SinkInner {
                enabled: Cell::new(true),
                mask: Cell::new(TraceSink::DEFAULT_MASK),
                capacity: capacity.max(1),
                events: RefCell::new(VecDeque::with_capacity(capacity.clamp(1, 1 << 12))),
                dropped: Cell::new(0),
                attr: RefCell::new(Attribution::default()),
            }),
        }
    }

    /// Creates a sink that starts disabled (for overhead experiments).
    pub fn disabled() -> TraceSink {
        let sink = TraceSink::new();
        sink.set_enabled(false);
        sink
    }

    /// Whether the sink currently records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.get()
    }

    /// Enables or disables all recording.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.set(enabled);
    }

    /// Restricts recording to the categories whose bits are set in `mask`
    /// (build it by OR-ing [`Category::bit`] values). Masked-out spans are
    /// also excluded from attribution; masking out [`Category::Op`]
    /// disables attribution entirely.
    pub fn set_mask(&self, mask: u32) {
        self.inner.mask.set(mask);
    }

    /// The current category mask.
    pub fn mask(&self) -> u32 {
        self.inner.mask.get()
    }

    /// True when events of `cat` would currently be recorded.
    ///
    /// This is the hot-path gate: every record method checks it *before*
    /// building the event, so a masked category costs two `Cell` reads —
    /// no event construction, no ring access, no allocation.
    #[inline]
    pub fn wants(&self, cat: Category) -> bool {
        self.inner.enabled.get() && self.inner.mask.get() & cat.bit() != 0
    }

    #[inline]
    fn push(&self, ev: TraceEvent) {
        // Callers must gate on `wants` before constructing the event;
        // reaching the ring with a masked category means a record path
        // skipped its early-out.
        debug_assert!(
            self.wants(ev.category()),
            "TraceEvent pushed past the category mask: {:?}",
            ev.category()
        );
        let mut events = self.inner.events.borrow_mut();
        if events.len() == self.inner.capacity {
            events.pop_front();
            self.inner.dropped.set(self.inner.dropped.get() + 1);
        }
        events.push_back(ev);
    }

    /// Records a completed interval and, for attributed categories, charges
    /// it to the actor's open operation.
    #[inline]
    pub fn span(
        &self,
        t_ns: u64,
        dur_ns: u64,
        actor: Actor,
        cat: Category,
        name: &'static str,
        args: Args,
    ) {
        if !self.wants(cat) {
            return;
        }
        self.inner.attr.borrow_mut().add_span(actor, cat, dur_ns);
        self.push(TraceEvent::Span {
            t_ns,
            dur_ns,
            actor,
            cat,
            name,
            args,
        });
    }

    /// Records a point-in-time annotation.
    #[inline]
    pub fn instant(&self, t_ns: u64, actor: Actor, cat: Category, name: &'static str, args: Args) {
        if !self.wants(cat) {
            return;
        }
        self.push(TraceEvent::Instant {
            t_ns,
            actor,
            cat,
            name,
            args,
        });
    }

    /// Records a [`Category::Sync`] probe: `actor` performed `op` on the
    /// lock or shared cell identified by `id` and named `name`. A no-op
    /// unless Sync events are unmasked (see [`TraceSink::DEFAULT_MASK`]).
    #[inline]
    pub fn sync_probe(&self, t_ns: u64, actor: Actor, name: &'static str, op: SyncOp, id: u64) {
        // Masked by default: bail before even assembling the args. Sync
        // probes sit inside every lock acquire/release, the most
        // frequently hit record path in the runtime.
        if !self.wants(Category::Sync) {
            return;
        }
        self.instant(
            t_ns,
            actor,
            Category::Sync,
            name,
            Args::two("sync", op.code(), "id", id),
        );
    }

    /// Records a sampled counter value.
    #[inline]
    pub fn counter(&self, t_ns: u64, actor: Actor, cat: Category, name: &'static str, value: u64) {
        if !self.wants(cat) {
            return;
        }
        self.push(TraceEvent::Counter {
            t_ns,
            actor,
            cat,
            name,
            value,
        });
    }

    /// Opens an operation scope for `actor`: until the matching
    /// [`TraceSink::end_op`], attributed spans from the same actor are
    /// charged to this operation.
    #[inline]
    pub fn begin_op(&self, t_ns: u64, actor: Actor, kind: &'static str) {
        if !self.wants(Category::Op) {
            return;
        }
        self.inner.attr.borrow_mut().begin_op(actor, kind, t_ns);
    }

    /// Closes the actor's operation scope, folds it into the attribution
    /// aggregates and records one `Op` span covering the whole operation.
    #[inline]
    pub fn end_op(&self, t_ns: u64, actor: Actor) {
        if !self.wants(Category::Op) {
            return;
        }
        let closed = self.inner.attr.borrow_mut().end_op(actor, t_ns);
        if let Some((kind, start_ns)) = closed {
            self.push(TraceEvent::Span {
                t_ns: start_ns,
                dur_ns: t_ns.saturating_sub(start_ns),
                actor,
                cat: Category::Op,
                name: kind,
                args: Args::NONE,
            });
        }
    }

    /// Copies the current ring contents, oldest event first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.events.borrow().iter().copied().collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.events.borrow().len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.get()
    }

    /// Snapshot of the op-latency attribution aggregates.
    pub fn attribution(&self) -> AttributionReport {
        self.inner.attr.borrow().snapshot()
    }

    /// Exports the buffered events as Chrome trace-event JSON (see
    /// [`crate::chrome_trace_json`]).
    pub fn chrome_json(&self) -> String {
        crate::chrome_trace_json(&self.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = TraceSink::with_capacity(8);
        let b = a.clone();
        a.span(0, 5, Actor::thread(1), Category::DbLock, "x", Args::NONE);
        assert_eq!(b.len(), 1);
        b.set_enabled(false);
        assert!(!a.is_enabled());
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let s = TraceSink::with_capacity(2);
        for i in 0..5u64 {
            s.instant(i, Actor::thread(0), Category::Cache, "m", Args::NONE);
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        let evs = s.events();
        assert_eq!(evs[0].t_ns(), 3);
        assert_eq!(evs[1].t_ns(), 4);
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let s = TraceSink::disabled();
        s.span(0, 5, Actor::thread(1), Category::DbLock, "x", Args::NONE);
        s.begin_op(0, Actor::thread(1), "op");
        s.end_op(10, Actor::thread(1));
        assert!(s.is_empty());
        assert!(s.attribution().is_empty());
    }

    #[test]
    fn mask_filters_categories_and_attribution() {
        let s = TraceSink::with_capacity(16);
        s.set_mask(Category::Op.bit() | Category::Fabric.bit());
        let actor = Actor::new(1, 0);
        s.begin_op(0, actor, "ht_get");
        s.span(1, 10, actor, Category::DbLock, "lock", Args::NONE);
        s.span(2, 20, actor, Category::Fabric, "wire", Args::NONE);
        s.end_op(100, actor);
        let r = s.attribution();
        let stats = r.kind("ht_get").unwrap();
        assert_eq!(stats.category_ns(Category::DbLock), 0);
        assert_eq!(stats.category_ns(Category::Fabric), 20);
        // Ring holds the fabric span and the closing op span only.
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn sync_probes_are_masked_out_by_default() {
        let s = TraceSink::with_capacity(16);
        let actor = Actor::new(1, 2);
        s.sync_probe(10, actor, "qp_lock", SyncOp::Acquire, 7);
        assert!(s.is_empty(), "default mask must exclude Sync");
        s.set_mask(TraceSink::DEFAULT_MASK | Category::Sync.bit());
        s.sync_probe(20, actor, "qp_lock", SyncOp::Release, 7);
        let evs = s.events();
        assert_eq!(evs.len(), 1);
        match evs[0] {
            TraceEvent::Instant {
                t_ns,
                cat,
                name,
                args,
                ..
            } => {
                assert_eq!((t_ns, cat, name), (20, Category::Sync, "qp_lock"));
                assert_eq!(args, Args::two("sync", SyncOp::Release.code(), "id", 7));
            }
            other => panic!("expected instant, got {other:?}"),
        }
    }

    #[test]
    fn masked_categories_never_touch_the_ring() {
        let s = TraceSink::with_capacity(16);
        s.set_mask(0); // everything masked
        let actor = Actor::new(3, 1);
        for i in 0..1_000u64 {
            s.span(i, 5, actor, Category::DbLock, "lock", Args::one("w", i));
            s.instant(i, actor, Category::Cache, "miss", Args::NONE);
            s.counter(i, actor, Category::Tune, "c_max", i);
            s.sync_probe(i, actor, "cell", SyncOp::Acquire, i);
            s.begin_op(i, actor, "op");
            s.end_op(i + 1, actor);
        }
        assert_eq!(s.len(), 0, "masked events must not reach the ring");
        assert_eq!(s.dropped(), 0, "masked events must not evict anything");
        assert!(s.attribution().is_empty(), "masked ops must not attribute");
    }

    #[test]
    fn end_op_records_an_op_span() {
        let s = TraceSink::with_capacity(16);
        let actor = Actor::new(2, 7);
        s.begin_op(50, actor, "bt_get");
        s.end_op(80, actor);
        let evs = s.events();
        assert_eq!(evs.len(), 1);
        match evs[0] {
            TraceEvent::Span {
                t_ns,
                dur_ns,
                cat,
                name,
                ..
            } => {
                assert_eq!((t_ns, dur_ns), (50, 30));
                assert_eq!(cat, Category::Op);
                assert_eq!(name, "bt_get");
            }
            other => panic!("expected span, got {other:?}"),
        }
    }
}
