//! Golden-file test for the Chrome trace-event exporter: a small scripted
//! scenario must serialize to exactly the bytes checked in under
//! `tests/golden/`. Regenerate with
//! `cargo test -p smart-trace --test chrome_golden -- --nocapture` after an
//! intentional format change and paste the printed JSON.

use smart_trace::{Actor, Args, Category, TraceSink};

fn scripted_sink() -> TraceSink {
    let sink = TraceSink::with_capacity(16);
    // Node 0 / thread 0 runs one traced ht_get...
    let t0 = Actor::new(0, 0);
    // ...while node 1 / thread 2 / coroutine 1 waits for a credit and a
    // background tuner samples a counter.
    let t1 = Actor::new((1 << 32) | 2, 1);
    sink.begin_op(1_000, t0, "ht_get");
    sink.span(
        1_200,
        300,
        t0,
        Category::DbLock,
        "qp_lock",
        Args::two("wait_ns", 100, "waiters", 1),
    );
    sink.instant(1_600, t0, Category::Cache, "wqe_miss", Args::NONE);
    sink.span(1_700, 2_000, t0, Category::Fabric, "net_req", Args::NONE);
    sink.end_op(4_000, t0);
    sink.span(
        2_000,
        500,
        t1,
        Category::Credit,
        "credit_wait",
        Args::one("permits", 1),
    );
    sink.counter(5_000, Actor::SYSTEM, Category::Tune, "c_max", 16);
    sink
}

#[test]
fn chrome_export_matches_golden_file() {
    let json = scripted_sink().chrome_json();
    let golden = include_str!("golden/scripted.trace.json");
    if json != golden.trim_end() {
        println!("{json}");
    }
    assert_eq!(
        json,
        golden.trim_end(),
        "exporter output drifted from golden file"
    );
}

#[test]
fn export_is_reproducible() {
    assert_eq!(scripted_sink().chrome_json(), scripted_sink().chrome_json());
}
