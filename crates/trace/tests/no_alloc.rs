//! Allocation gate for the tracing hot path: recording an event whose
//! category is masked off must not allocate at all. The runtime leaves
//! its instrumentation compiled in on every hot path (executor wake
//! path, rnic per-WR dispatch, lock acquire/release), so a masked probe
//! has to cost a couple of branches — a hidden `format!` or ring push
//! would tax every simulated event of every untraced run.
//!
//! The counting allocator lives here rather than in the library because
//! `smart-trace` itself is `#![forbid(unsafe_code)]`; a test binary is
//! its own crate and may install a `#[global_allocator]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use smart_trace::{Actor, Args, Category, SyncOp, TraceSink};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn masked_and_disabled_recording_is_allocation_free() {
    let masked = TraceSink::with_capacity(64);
    masked.set_mask(0);
    let disabled = TraceSink::disabled();
    let actor = Actor::new(1, 2);

    for sink in [&masked, &disabled] {
        let n = allocations(|| {
            for i in 0..10_000u64 {
                sink.span(i, 7, actor, Category::DbLock, "qp_lock", Args::one("w", i));
                sink.instant(i, actor, Category::Cache, "wqe_miss", Args::NONE);
                sink.counter(i, actor, Category::Tune, "c_max", i);
                sink.sync_probe(i, actor, "cell", SyncOp::Acquire, i);
                sink.begin_op(i, actor, "ht_get");
                sink.end_op(i + 1, actor);
            }
        });
        assert_eq!(n, 0, "masked-off recording allocated {n} times");
        assert!(sink.is_empty());
    }
}

#[test]
fn sync_probes_under_default_mask_are_allocation_free() {
    // The default mask excludes Sync, so the probes inside every lock
    // acquire/release must vanish without building their args.
    let sink = TraceSink::with_capacity(64);
    let actor = Actor::new(0, 0);
    let n = allocations(|| {
        for i in 0..10_000u64 {
            sink.sync_probe(i, actor, "qp_lock", SyncOp::Acquire, i);
            sink.sync_probe(i + 1, actor, "qp_lock", SyncOp::Release, i);
        }
    });
    assert_eq!(n, 0, "default-masked sync probes allocated {n} times");
    assert!(sink.is_empty());
}

#[test]
fn unmasked_recording_does_allocate_into_the_ring() {
    // Guard against the gate passing vacuously (e.g. the counter not
    // counting): unmasked recording past the ring's preallocation must
    // grow the ring, and growing the ring allocates.
    let sink = TraceSink::with_capacity(1 << 13);
    let actor = Actor::new(1, 2);
    let n = allocations(|| {
        for i in 0..6_000u64 {
            sink.instant(i, actor, Category::Cache, "wqe_miss", Args::NONE);
        }
    });
    assert_eq!(sink.len(), 6_000);
    assert!(n > 0, "allocation counter is not observing the test binary");
}
