//! SmallBank on the FORD transaction engine.

use std::rc::Rc;

use smart::SmartCoro;
use smart_rnic::{MemoryBlade, RemoteAddr};
use smart_workloads::smallbank::SmallBankTxn;

use crate::dtx::{DtxDb, DtxError, DtxStats, RecordId};

const SAVINGS: usize = 0;
const CHECKING: usize = 1;

fn enc(v: i64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

fn dec(payload: &[u8]) -> i64 {
    i64::from_le_bytes(payload[0..8].try_into().expect("8-byte balance"))
}

/// The SmallBank database: savings + checking tables over the blades.
pub struct SmallBank {
    db: Rc<DtxDb>,
    accounts: u64,
}

impl std::fmt::Debug for SmallBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmallBank")
            .field("accounts", &self.accounts)
            .finish()
    }
}

impl SmallBank {
    /// Creates and loads the bank with `initial` cents in each of the two
    /// balances of every account.
    pub fn create(blades: &[Rc<MemoryBlade>], accounts: u64, initial: i64) -> Rc<Self> {
        let db = DtxDb::create(
            blades,
            &[("savings", accounts, 8), ("checking", accounts, 8)],
        );
        for a in 0..accounts {
            db.load_record(
                RecordId {
                    table: SAVINGS,
                    key: a,
                },
                &enc(initial),
            );
            db.load_record(
                RecordId {
                    table: CHECKING,
                    key: a,
                },
                &enc(initial),
            );
        }
        Rc::new(SmallBank { db, accounts })
    }

    /// The underlying transaction engine.
    pub fn db(&self) -> &Rc<DtxDb> {
        &self.db
    }

    /// Commit/abort statistics.
    pub fn stats(&self) -> &DtxStats {
        self.db.stats()
    }

    /// Number of accounts.
    pub fn accounts(&self) -> u64 {
        self.accounts
    }

    /// Executes one transaction attempt.
    ///
    /// # Errors
    ///
    /// Propagates the engine's abort reasons; the caller retries.
    pub async fn execute(
        &self,
        coro: &SmartCoro,
        log: RemoteAddr,
        txn: &SmallBankTxn,
    ) -> Result<(), DtxError> {
        let _op = coro.op_scope_named("dtx_txn").await;
        let mut t = self.db.begin(coro, log);
        match *txn {
            SmallBankTxn::Amalgamate { from, to } => {
                let sv = RecordId {
                    table: SAVINGS,
                    key: from,
                };
                let cf = RecordId {
                    table: CHECKING,
                    key: from,
                };
                let ct = RecordId {
                    table: CHECKING,
                    key: to,
                };
                let vals = t.fetch(&[sv, cf, ct]).await?;
                let total = dec(&vals[0]) + dec(&vals[1]);
                t.stage(sv, enc(0));
                t.stage(cf, enc(0));
                t.stage(ct, enc(dec(&vals[2]) + total));
            }
            SmallBankTxn::Balance { account } => {
                let sv = RecordId {
                    table: SAVINGS,
                    key: account,
                };
                let ck = RecordId {
                    table: CHECKING,
                    key: account,
                };
                t.fetch(&[sv, ck]).await?;
            }
            SmallBankTxn::DepositChecking { account, amount } => {
                let ck = RecordId {
                    table: CHECKING,
                    key: account,
                };
                let vals = t.fetch(&[ck]).await?;
                t.stage(ck, enc(dec(&vals[0]) + amount));
            }
            SmallBankTxn::SendPayment { from, to, amount } => {
                let cf = RecordId {
                    table: CHECKING,
                    key: from,
                };
                let ct = RecordId {
                    table: CHECKING,
                    key: to,
                };
                let vals = t.fetch(&[cf, ct]).await?;
                let bal = dec(&vals[0]);
                if bal >= amount {
                    t.stage(cf, enc(bal - amount));
                    t.stage(ct, enc(dec(&vals[1]) + amount));
                }
                // Insufficient funds: commits as a read-only no-op.
            }
            SmallBankTxn::TransactSavings { account, amount } => {
                let sv = RecordId {
                    table: SAVINGS,
                    key: account,
                };
                let vals = t.fetch(&[sv]).await?;
                let new = dec(&vals[0]) + amount;
                if new >= 0 {
                    t.stage(sv, enc(new));
                }
            }
            SmallBankTxn::WriteCheck { account, amount } => {
                let sv = RecordId {
                    table: SAVINGS,
                    key: account,
                };
                let ck = RecordId {
                    table: CHECKING,
                    key: account,
                };
                let vals = t.fetch(&[sv, ck]).await?;
                let total = dec(&vals[0]) + dec(&vals[1]);
                let penalty = if total < amount { 1 } else { 0 };
                t.stage(ck, enc(dec(&vals[1]) - amount - penalty));
            }
        }
        t.commit().await
    }

    /// Net money the committed execution of `txn` injects into (positive)
    /// or removes from (negative) the bank, given the pre-state — used by
    /// the conservation invariant tests. Transfers return 0.
    pub fn money_delta(&self, txn: &SmallBankTxn) -> Option<i64> {
        match *txn {
            SmallBankTxn::Amalgamate { .. } | SmallBankTxn::Balance { .. } => Some(0),
            SmallBankTxn::DepositChecking { amount, .. } => Some(amount),
            SmallBankTxn::SendPayment { .. } => None, // 0 or no-op: both conserve
            SmallBankTxn::TransactSavings { .. } => None, // amount or no-op
            SmallBankTxn::WriteCheck { .. } => None,  // -amount or -amount-1
        }
    }

    /// `smart-check` conservation invariant: at quiescence the bank-wide
    /// sum must equal `expected_total` and no record lock may remain held.
    /// Panics inside [`Self::total_money`] (a leaked lock) are converted
    /// into findings so schedule exploration can report them instead of
    /// aborting.
    pub fn conservation_violations(&self, expected_total: i64) -> Vec<String> {
        let total =
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.total_money())) {
                Ok(total) => total,
                Err(e) => {
                    let msg = e
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "balance scan panicked".to_string());
                    return vec![format!("bank state unreadable at rest: {msg}")];
                }
            };
        if total == expected_total {
            Vec::new()
        } else {
            vec![format!(
                "total money {total} != expected {expected_total} at quiescence"
            )]
        }
    }

    /// Host-side sum of every balance (invariant checking).
    pub fn total_money(&self) -> i64 {
        let mut sum = 0i64;
        for table in [SAVINGS, CHECKING] {
            for a in 0..self.accounts {
                let (lock, _v, payload) = self.db.read_record_direct(RecordId { table, key: a });
                assert_eq!(lock, 0, "no lock may remain held at rest");
                sum += dec(&payload);
            }
        }
        sum
    }
}
