#![warn(missing_docs)]

//! # smart-ford — FORD-style one-sided RDMA distributed transactions
//!
//! A reimplementation of the transaction protocol of FORD (Zhang et al.,
//! FAST '22) over the simulated disaggregated-memory cluster: optimistic
//! reads with versions, CAS write locks, undo logging to persistent
//! memory, in-place persistent writes and unlock — each phase one
//! doorbell batch. The SMART paper's SMART-DTX is this engine run under
//! [`smart::SmartConfig::smart_full`]; the FORD+ baseline is the same
//! engine under [`smart::QpPolicy::PerThreadQp`] (its 16-line refactor).
//!
//! Two OLTP applications are included: [`SmallBank`] (85 % read-write)
//! and [`Tatp`] (80 % read-only), matching §6.2.2.
//!
//! ```rust
//! use std::rc::Rc;
//! use smart::{SmartConfig, SmartContext};
//! use smart_ford::SmallBank;
//! use smart_rnic::{Cluster, ClusterConfig};
//! use smart_rt::Simulation;
//! use smart_workloads::smallbank::SmallBankTxn;
//!
//! let mut sim = Simulation::new(5);
//! let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
//! let bank = SmallBank::create(cluster.blades(), 100, 1_000);
//! let ctx = SmartContext::new(cluster.compute(0), cluster.blades(), SmartConfig::smart_full(1));
//! let thread = ctx.create_thread();
//! let log = bank.db().alloc_log_region();
//! let b = Rc::clone(&bank);
//! sim.block_on(async move {
//!     let coro = thread.coroutine();
//!     let txn = SmallBankTxn::DepositChecking { account: 7, amount: 50 };
//!     b.execute(&coro, log, &txn).await.expect("commit");
//! });
//! assert_eq!(bank.total_money(), 100 * 2 * 1_000 + 50);
//! ```

pub mod dtx;
pub mod smallbank_app;
pub mod tatp_app;

pub use dtx::{backoff_after_abort, CrashPoint, DtxDb, DtxError, DtxStats, RecordId, Txn};
pub use smallbank_app::SmallBank;
pub use tatp_app::Tatp;
