//! TATP on the FORD transaction engine.

use std::rc::Rc;

use smart::SmartCoro;
use smart_rnic::{MemoryBlade, RemoteAddr};
use smart_workloads::tatp::TatpTxn;

use crate::dtx::{DtxDb, DtxError, DtxStats, RecordId};

const SUBSCRIBER: usize = 0;
const ACCESS_INFO: usize = 1;
const SPECIAL_FACILITY: usize = 2;
const CALL_FORWARDING: usize = 3;

/// Subscriber payload: `[bit: u8; 7 pad][location: u64][vlr: u64][pad to 40]`.
const SUB_PAYLOAD: u64 = 40;
/// Access-info payload: `[data1..4][pad to 16]`.
const AI_PAYLOAD: u64 = 16;
/// Special-facility payload: `[is_active: u8][data][pad to 16]`.
const SF_PAYLOAD: u64 = 16;
/// Call-forwarding payload: `[exists: u8][end_time: u8][numberx][pad to 24]`.
const CF_PAYLOAD: u64 = 24;

/// The TATP database over the blades.
pub struct Tatp {
    db: Rc<DtxDb>,
    subscribers: u64,
}

impl std::fmt::Debug for Tatp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tatp")
            .field("subscribers", &self.subscribers)
            .finish()
    }
}

impl Tatp {
    /// Creates and loads the four TATP tables for `subscribers`
    /// subscribers (4 access-info and special-facility rows per
    /// subscriber, 3 call-forwarding slots per special facility, per the
    /// TATP population rules).
    pub fn create(blades: &[Rc<MemoryBlade>], subscribers: u64) -> Rc<Self> {
        let db = DtxDb::create(
            blades,
            &[
                ("subscriber", subscribers, SUB_PAYLOAD),
                ("access_info", subscribers * 4, AI_PAYLOAD),
                ("special_facility", subscribers * 4, SF_PAYLOAD),
                ("call_forwarding", subscribers * 12, CF_PAYLOAD),
            ],
        );
        for sid in 0..subscribers {
            let mut sub = vec![0u8; SUB_PAYLOAD as usize];
            sub[8..16].copy_from_slice(&sid.to_le_bytes()); // initial location
            db.load_record(
                RecordId {
                    table: SUBSCRIBER,
                    key: sid,
                },
                &sub,
            );
            for t in 0..4 {
                let mut ai = vec![0u8; AI_PAYLOAD as usize];
                ai[0] = t as u8 + 1;
                db.load_record(
                    RecordId {
                        table: ACCESS_INFO,
                        key: sid * 4 + t,
                    },
                    &ai,
                );
                let mut sf = vec![0u8; SF_PAYLOAD as usize];
                sf[0] = 1; // is_active
                db.load_record(
                    RecordId {
                        table: SPECIAL_FACILITY,
                        key: sid * 4 + t,
                    },
                    &sf,
                );
                for slot in 0..3 {
                    let cf = vec![0u8; CF_PAYLOAD as usize];
                    db.load_record(
                        RecordId {
                            table: CALL_FORWARDING,
                            key: (sid * 4 + t) * 3 + slot,
                        },
                        &cf,
                    );
                }
            }
        }
        Rc::new(Tatp { db, subscribers })
    }

    /// The underlying transaction engine.
    pub fn db(&self) -> &Rc<DtxDb> {
        &self.db
    }

    /// Commit/abort statistics.
    pub fn stats(&self) -> &DtxStats {
        self.db.stats()
    }

    /// Number of subscribers.
    pub fn subscribers(&self) -> u64 {
        self.subscribers
    }

    fn sf_key(sid: u64, sf_type: u8) -> u64 {
        sid * 4 + (sf_type - 1) as u64
    }

    fn cf_key(sid: u64, sf_type: u8, start_time: u8) -> u64 {
        Self::sf_key(sid, sf_type) * 3 + (start_time / 8) as u64
    }

    /// Executes one transaction attempt.
    ///
    /// # Errors
    ///
    /// Propagates engine abort reasons; the caller retries.
    pub async fn execute(
        &self,
        coro: &SmartCoro,
        log: RemoteAddr,
        txn: &TatpTxn,
    ) -> Result<(), DtxError> {
        let _op = coro.op_scope_named("dtx_txn").await;
        let mut t = self.db.begin(coro, log);
        match *txn {
            TatpTxn::GetSubscriberData { sid } => {
                t.fetch(&[RecordId {
                    table: SUBSCRIBER,
                    key: sid,
                }])
                .await?;
            }
            TatpTxn::GetNewDestination { sid, sf_type } => {
                let sf = RecordId {
                    table: SPECIAL_FACILITY,
                    key: Self::sf_key(sid, sf_type),
                };
                let cf0 = RecordId {
                    table: CALL_FORWARDING,
                    key: Self::cf_key(sid, sf_type, 0),
                };
                let cf1 = RecordId {
                    table: CALL_FORWARDING,
                    key: Self::cf_key(sid, sf_type, 8),
                };
                let cf2 = RecordId {
                    table: CALL_FORWARDING,
                    key: Self::cf_key(sid, sf_type, 16),
                };
                t.fetch(&[sf, cf0, cf1, cf2]).await?;
            }
            TatpTxn::GetAccessData { sid, ai_type } => {
                let ai = RecordId {
                    table: ACCESS_INFO,
                    key: sid * 4 + (ai_type - 1) as u64,
                };
                t.fetch(&[ai]).await?;
            }
            TatpTxn::UpdateSubscriberData { sid, sf_type, bit } => {
                let sub = RecordId {
                    table: SUBSCRIBER,
                    key: sid,
                };
                let sf = RecordId {
                    table: SPECIAL_FACILITY,
                    key: Self::sf_key(sid, sf_type),
                };
                let vals = t.fetch(&[sub, sf]).await?;
                let mut s = vals[0].clone();
                s[0] = bit as u8;
                t.stage(sub, s);
                let mut f = vals[1].clone();
                f[1] = f[1].wrapping_add(1); // data_a churn
                t.stage(sf, f);
            }
            TatpTxn::UpdateLocation { sid, location } => {
                let sub = RecordId {
                    table: SUBSCRIBER,
                    key: sid,
                };
                let vals = t.fetch(&[sub]).await?;
                let mut s = vals[0].clone();
                s[8..16].copy_from_slice(&location.to_le_bytes());
                t.stage(sub, s);
            }
            TatpTxn::InsertCallForwarding {
                sid,
                sf_type,
                start_time,
            } => {
                let cf = RecordId {
                    table: CALL_FORWARDING,
                    key: Self::cf_key(sid, sf_type, start_time),
                };
                let vals = t.fetch(&[cf]).await?;
                let mut c = vals[0].clone();
                c[0] = 1; // exists
                c[1] = start_time + 8; // end_time
                t.stage(cf, c);
            }
            TatpTxn::DeleteCallForwarding {
                sid,
                sf_type,
                start_time,
            } => {
                let cf = RecordId {
                    table: CALL_FORWARDING,
                    key: Self::cf_key(sid, sf_type, start_time),
                };
                t.fetch(&[cf]).await?;
                t.stage(cf, vec![0u8; CF_PAYLOAD as usize]);
            }
        }
        t.commit().await
    }

    /// Host-side read of a subscriber's location (verification helper).
    pub fn location_direct(&self, sid: u64) -> u64 {
        let (_l, _v, p) = self.db.read_record_direct(RecordId {
            table: SUBSCRIBER,
            key: sid,
        });
        u64::from_le_bytes(p[8..16].try_into().expect("8B location"))
    }
}
