//! FORD-style distributed transactions over disaggregated persistent
//! memory (Zhang et al., FAST '22), driven by one-sided verbs.
//!
//! Record layout on a blade (all records pre-allocated, NVM-resident):
//!
//! ```text
//! [ lock: u64 ][ version: u64 ][ payload: table.payload_bytes ]
//! ```
//!
//! Transaction protocol (optimistic concurrency with write locks):
//!
//! 1. **fetch** — READ whole records of the read+write set (one batch);
//! 2. **lock**  — CAS each write-set lock `0 → txn_id` (one batch); any
//!    loss releases the acquired locks and aborts;
//! 3. **validate** — re-READ headers of read-only entries; a changed
//!    version or a foreign lock aborts;
//! 4. **log** — WRITE the undo images to the coordinator thread's log
//!    region (persistent write: pays the NVM latency);
//! 5. **write** — WRITE `version+1` and the new payload in place
//!    (persistent);
//! 6. **unlock** — WRITE `0` to each lock word.
//!
//! Every phase is one doorbell batch, matching FORD's message pattern —
//! which is exactly what makes it doorbell-sensitive in the SMART paper
//! (§6.2.2).

use std::cell::Cell;
use std::rc::Rc;

use smart::SmartCoro;
use smart_rnic::{CqeError, MemoryBlade, RemoteAddr};
use smart_rt::metrics::Counter;

/// Record header bytes (lock + version).
pub const HEADER_BYTES: u64 = 16;

/// Why a transaction aborted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DtxError {
    /// A write-set record was locked by another transaction.
    LockConflict,
    /// A read-set record changed between fetch and validation.
    ValidationFailed,
    /// A record was locked while fetching (dirty snapshot).
    FetchConflict,
    /// An RDMA fault could not be recovered (permanent error or
    /// exhausted retry budget); carries the final completion error.
    Fault(CqeError),
}

impl std::fmt::Display for DtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DtxError::LockConflict => write!(f, "write-set lock conflict"),
            DtxError::ValidationFailed => write!(f, "read-set validation failed"),
            DtxError::FetchConflict => write!(f, "record locked during fetch"),
            DtxError::Fault(e) => write!(f, "unrecoverable RDMA fault: {e}"),
        }
    }
}

impl std::error::Error for DtxError {}

/// A table: fixed-size records partitioned round-robin across blades.
#[derive(Clone, Debug)]
pub struct TableMeta {
    name: &'static str,
    records: u64,
    payload_bytes: u64,
    /// Base offset of this table's slab on each blade.
    bases: Vec<u64>,
}

impl TableMeta {
    /// Bytes per record including the header.
    pub fn record_bytes(&self) -> u64 {
        HEADER_BYTES + self.payload_bytes
    }

    /// Number of records.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Payload bytes per record.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Table name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Identifies a record: table index + key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RecordId {
    /// Index of the table in the database schema.
    pub table: usize,
    /// Record key in `[0, records)`.
    pub key: u64,
}

/// Commit/abort counters.
#[derive(Clone, Debug, Default)]
pub struct DtxStats {
    /// Committed transactions.
    pub committed: Counter,
    /// Aborts (a transaction may abort several times before committing).
    pub aborted: Counter,
}

impl DtxStats {
    /// Abort rate: aborts / (aborts + commits).
    pub fn abort_rate(&self) -> f64 {
        let total = self.committed.get() + self.aborted.get();
        if total == 0 {
            0.0
        } else {
            self.aborted.get() as f64 / total as f64
        }
    }
}

/// The database: schema + blade placement + per-thread undo-log regions.
pub struct DtxDb {
    blades: Vec<Rc<MemoryBlade>>,
    tables: Vec<TableMeta>,
    log_bytes_per_thread: u64,
    stats: DtxStats,
    next_txn: Cell<u64>,
}

impl std::fmt::Debug for DtxDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DtxDb")
            .field("tables", &self.tables.len())
            .field("blades", &self.blades.len())
            .finish()
    }
}

impl DtxDb {
    /// Creates a database with the given schema, allocating every table
    /// slab on the blades (records zero-initialized: lock 0, version 0).
    ///
    /// # Panics
    ///
    /// Panics if `blades` is empty or a blade runs out of memory.
    pub fn create(
        blades: &[Rc<MemoryBlade>],
        schema: &[(&'static str, u64, u64)], // (name, records, payload_bytes)
    ) -> Rc<Self> {
        assert!(!blades.is_empty(), "need at least one memory blade");
        let tables = schema
            .iter()
            .map(|&(name, records, payload_bytes)| {
                let record_bytes = HEADER_BYTES + payload_bytes;
                let per_blade = records.div_ceil(blades.len() as u64);
                let bases = blades
                    .iter()
                    .map(|b| b.alloc(per_blade * record_bytes, 8))
                    .collect();
                TableMeta {
                    name,
                    records,
                    payload_bytes,
                    bases,
                }
            })
            .collect();
        Rc::new(DtxDb {
            blades: blades.to_vec(),
            tables,
            log_bytes_per_thread: 16 * 1024,
            stats: DtxStats::default(),
            next_txn: Cell::new(1),
        })
    }

    /// The schema.
    pub fn tables(&self) -> &[TableMeta] {
        &self.tables
    }

    /// Commit/abort statistics.
    pub fn stats(&self) -> &DtxStats {
        &self.stats
    }

    fn fresh_txn_id(&self) -> u64 {
        let id = self.next_txn.get();
        self.next_txn.set(id + 1);
        id
    }

    /// The remote address of a record.
    ///
    /// # Panics
    ///
    /// Panics if the table index or key is out of range.
    pub fn record_addr(&self, id: RecordId) -> RemoteAddr {
        let table = &self.tables[id.table];
        assert!(id.key < table.records, "key {} out of range", id.key);
        let blade_idx = (id.key % self.blades.len() as u64) as usize;
        let idx = id.key / self.blades.len() as u64;
        RemoteAddr::new(
            self.blades[blade_idx].id(),
            table.bases[blade_idx] + idx * table.record_bytes(),
        )
    }

    /// Allocates an undo-log region for a coordinator thread; returns its
    /// base address (on blade 0 — logs are small and append-only).
    pub fn alloc_log_region(&self) -> RemoteAddr {
        let off = self.blades[0].alloc(self.log_bytes_per_thread, 8);
        RemoteAddr::new(self.blades[0].id(), off)
    }

    /// Host-side record initialization for the load phase.
    pub fn load_record(&self, id: RecordId, payload: &[u8]) {
        let table = &self.tables[id.table];
        assert_eq!(
            payload.len() as u64,
            table.payload_bytes,
            "payload size mismatch"
        );
        let addr = self.record_addr(id);
        let blade = &self.blades[(id.key % self.blades.len() as u64) as usize];
        debug_assert_eq!(blade.id(), addr.blade);
        blade.write_u64(addr.offset_bytes, 0); // lock
        blade.write_u64(addr.offset_bytes + 8, 0); // version
        blade.write_bytes(addr.offset_bytes + 16, payload);
    }

    /// Host-side record read (test/verification helper).
    pub fn read_record_direct(&self, id: RecordId) -> (u64, u64, Vec<u8>) {
        let table = &self.tables[id.table];
        let addr = self.record_addr(id);
        let blade = &self.blades[(id.key % self.blades.len() as u64) as usize];
        (
            blade.read_u64(addr.offset_bytes),
            blade.read_u64(addr.offset_bytes + 8),
            blade.read_bytes(addr.offset_bytes + 16, table.payload_bytes),
        )
    }

    /// Begins a transaction coordinated by `coro`, logging to `log_base`.
    ///
    /// ```rust
    /// # use std::rc::Rc;
    /// # use smart::{SmartConfig, SmartContext};
    /// # use smart_ford::{DtxDb, RecordId};
    /// # use smart_rnic::{Cluster, ClusterConfig};
    /// # use smart_rt::Simulation;
    /// let mut sim = Simulation::new(1);
    /// let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    /// let db = DtxDb::create(cluster.blades(), &[("accounts", 16, 8)]);
    /// db.load_record(RecordId { table: 0, key: 3 }, &100u64.to_le_bytes());
    /// let ctx = SmartContext::new(cluster.compute(0), cluster.blades(),
    ///                             SmartConfig::smart_full(1));
    /// let thread = ctx.create_thread();
    /// let log = db.alloc_log_region();
    /// let db2 = Rc::clone(&db);
    /// sim.block_on(async move {
    ///     let coro = thread.coroutine();
    ///     let rid = RecordId { table: 0, key: 3 };
    ///     let mut txn = db2.begin(&coro, log);
    ///     let vals = txn.fetch(&[rid]).await.expect("fetch");
    ///     let balance = u64::from_le_bytes(vals[0].clone().try_into().unwrap());
    ///     txn.stage(rid, (balance + 50).to_le_bytes().to_vec());
    ///     txn.commit().await.expect("commit");
    /// });
    /// assert_eq!(db.read_record_direct(RecordId { table: 0, key: 3 }).2,
    ///            150u64.to_le_bytes());
    /// ```
    pub fn begin<'a>(&'a self, coro: &'a SmartCoro, log_base: RemoteAddr) -> Txn<'a> {
        Txn {
            db: self,
            coro,
            id: self.fresh_txn_id(),
            entries: Vec::new(),
            log_base,
        }
    }
}

struct Entry {
    id: RecordId,
    version: u64,
    old_payload: Vec<u8>,
    new_payload: Option<Vec<u8>>,
}

/// Fault-injection points inside the commit protocol, for testing
/// recovery: the coordinator "crashes" (stops, leaving remote state as
/// is) right after the named phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrashPoint {
    /// Locks acquired, nothing logged or written.
    AfterLock,
    /// Undo log persisted, data not yet written.
    AfterLog,
    /// New data written in place, locks still held.
    AfterDataWrite,
}

/// An in-flight transaction.
pub struct Txn<'a> {
    db: &'a DtxDb,
    coro: &'a SmartCoro,
    id: u64,
    entries: Vec<Entry>,
    log_base: RemoteAddr,
}

impl std::fmt::Debug for Txn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Txn")
            .field("id", &self.id)
            .field("entries", &self.entries.len())
            .finish()
    }
}

impl<'a> Txn<'a> {
    /// This transaction's id (used as the lock value).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Fetches `ids` in one READ batch, adding them to the read set;
    /// returns their payloads in order.
    ///
    /// # Errors
    ///
    /// [`DtxError::FetchConflict`] if any record is currently locked, or
    /// [`DtxError::Fault`] if the READ batch hit an unrecoverable RDMA
    /// fault (transient faults are retried transparently).
    pub async fn fetch(&mut self, ids: &[RecordId]) -> Result<Vec<Vec<u8>>, DtxError> {
        let mut wr_ids = Vec::with_capacity(ids.len());
        for &rid in ids {
            let table = &self.db.tables[rid.table];
            let addr = self.db.record_addr(rid);
            wr_ids.push(self.coro.read(addr, table.record_bytes() as u32));
        }
        self.coro.post_send().await;
        let cqes = self
            .coro
            .try_sync()
            .await
            .map_err(|e| DtxError::Fault(e.error))?;
        let mut out = Vec::with_capacity(ids.len());
        for (i, &rid) in ids.iter().enumerate() {
            let cqe = cqes
                .iter()
                .find(|c| c.wr_id == wr_ids[i])
                .expect("completion");
            let data = cqe.read_data();
            let lock = u64::from_le_bytes(data[0..8].try_into().expect("8B"));
            let version = u64::from_le_bytes(data[8..16].try_into().expect("8B"));
            if lock != 0 && lock != self.id {
                return Err(DtxError::FetchConflict);
            }
            let payload = data[16..].to_vec();
            out.push(payload.clone());
            self.entries.push(Entry {
                id: rid,
                version,
                old_payload: payload,
                new_payload: None,
            });
        }
        Ok(out)
    }

    /// Stages a new payload for a previously fetched record.
    ///
    /// # Panics
    ///
    /// Panics if the record was not fetched or the payload size is wrong.
    pub fn stage(&mut self, rid: RecordId, payload: Vec<u8>) {
        assert_eq!(
            payload.len() as u64,
            self.db.tables[rid.table].payload_bytes,
            "payload size mismatch for table {}",
            self.db.tables[rid.table].name
        );
        let entry = self
            .entries
            .iter_mut()
            .find(|e| e.id == rid)
            .unwrap_or_else(|| panic!("record {rid:?} staged without fetch"));
        entry.new_payload = Some(payload);
    }

    /// Whether the transaction has staged writes.
    pub fn is_read_write(&self) -> bool {
        self.entries.iter().any(|e| e.new_payload.is_some())
    }

    async fn unlock(&self, locked: &[usize]) {
        if locked.is_empty() {
            return;
        }
        for &i in locked {
            let addr = self.db.record_addr(self.entries[i].id);
            self.coro.write(addr, 0u64.to_le_bytes().to_vec());
        }
        self.coro.post_send().await;
        self.coro.sync().await;
    }

    /// Runs the commit protocol. Consumes the transaction.
    ///
    /// # Errors
    ///
    /// [`DtxError::LockConflict`] or [`DtxError::ValidationFailed`]; the
    /// caller re-executes the transaction from scratch (FORD's abort
    /// model — locks are already released when this returns).
    pub async fn commit(self) -> Result<(), DtxError> {
        self.commit_inner(None).await.map(|_| ())
    }

    /// Like [`Txn::commit`], but the coordinator stops dead right after
    /// `crash` — locks, log and data are left exactly as a real crash
    /// would. Use [`DtxDb::recover_from_log`] afterwards. Returns whether
    /// the crash point was reached (a transaction that aborts first never
    /// gets there).
    ///
    /// # Errors
    ///
    /// Same abort reasons as [`Txn::commit`].
    pub async fn commit_crashing_at(self, crash: CrashPoint) -> Result<bool, DtxError> {
        self.commit_inner(Some(crash)).await
    }

    async fn commit_inner(self, crash: Option<CrashPoint>) -> Result<bool, DtxError> {
        let write_idx: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.new_payload.is_some())
            .map(|(i, _)| i)
            .collect();
        let read_idx: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.new_payload.is_none())
            .map(|(i, _)| i)
            .collect();

        // --- 2. lock the write set (one CAS batch) -----------------------
        if !write_idx.is_empty() {
            let mut cas_ids = Vec::with_capacity(write_idx.len());
            for &i in &write_idx {
                let addr = self.db.record_addr(self.entries[i].id);
                cas_ids.push(self.coro.cas(addr, 0, self.id));
            }
            self.coro.post_send().await;
            let cqes = self.coro.sync().await;
            let mut acquired = Vec::new();
            let mut conflicted = false;
            for (slot, &i) in write_idx.iter().enumerate() {
                let cqe = cqes
                    .iter()
                    .find(|c| c.wr_id == cas_ids[slot])
                    .expect("completion");
                let won = cqe.atomic_old() == 0;
                if !won {
                    self.coro.mark_op_conflict();
                }
                if won {
                    acquired.push(i);
                } else {
                    conflicted = true;
                }
            }
            if conflicted {
                self.unlock(&acquired).await;
                self.db.stats.aborted.incr();
                return Err(DtxError::LockConflict);
            }
            if crash == Some(CrashPoint::AfterLock) {
                return Ok(true);
            }
            // Locking bumps nothing; verify the versions we read are
            // still current (the lock now protects them).
            let mut ver_ids = Vec::with_capacity(write_idx.len());
            for &i in &write_idx {
                let addr = self.db.record_addr(self.entries[i].id);
                ver_ids.push(self.coro.read(addr.offset(8), 8));
            }
            self.coro.post_send().await;
            let cqes = self.coro.sync().await;
            for (slot, &i) in write_idx.iter().enumerate() {
                let cqe = cqes
                    .iter()
                    .find(|c| c.wr_id == ver_ids[slot])
                    .expect("completion");
                let v = u64::from_le_bytes(cqe.read_data().try_into().expect("8B version"));
                if v != self.entries[i].version {
                    self.unlock(&write_idx).await;
                    self.db.stats.aborted.incr();
                    return Err(DtxError::ValidationFailed);
                }
            }
        }

        // --- 3. validate the read set ------------------------------------
        if !read_idx.is_empty() && !write_idx.is_empty() {
            let mut ids = Vec::with_capacity(read_idx.len());
            for &i in &read_idx {
                let addr = self.db.record_addr(self.entries[i].id);
                ids.push(self.coro.read(addr, 16)); // lock + version
            }
            self.coro.post_send().await;
            let cqes = self.coro.sync().await;
            for (slot, &i) in read_idx.iter().enumerate() {
                let cqe = cqes
                    .iter()
                    .find(|c| c.wr_id == ids[slot])
                    .expect("completion");
                let data = cqe.read_data();
                let lock = u64::from_le_bytes(data[0..8].try_into().expect("8B"));
                let version = u64::from_le_bytes(data[8..16].try_into().expect("8B"));
                if version != self.entries[i].version || (lock != 0 && lock != self.id) {
                    self.unlock(&write_idx).await;
                    self.db.stats.aborted.incr();
                    return Err(DtxError::ValidationFailed);
                }
            }
        }

        if write_idx.is_empty() {
            // Read-only: the fetch snapshot is the serialization point
            // (records were unlocked; versions re-checked is unnecessary
            // for single-fetch transactions).
            self.db.stats.committed.incr();
            return Ok(false);
        }

        // --- 4. undo log (persistent, one batch) -------------------------
        // Layout: [txn_id][entry count] then per entry
        // [table][key][version][old payload (padded to 8)].
        let mut log = Vec::new();
        log.extend_from_slice(&self.id.to_le_bytes());
        log.extend_from_slice(&(write_idx.len() as u64).to_le_bytes());
        for &i in &write_idx {
            let e = &self.entries[i];
            log.extend_from_slice(&(e.id.table as u64).to_le_bytes());
            log.extend_from_slice(&e.id.key.to_le_bytes());
            log.extend_from_slice(&e.version.to_le_bytes());
            log.extend_from_slice(&e.old_payload);
            let pad = e.old_payload.len().div_ceil(8) * 8 - e.old_payload.len();
            log.extend_from_slice(&vec![0u8; pad]);
        }
        self.coro.write_persistent(self.log_base, log);
        self.coro.post_send().await;
        self.coro.sync().await;
        if crash == Some(CrashPoint::AfterLog) {
            return Ok(true);
        }

        // --- 5. write new versions + payloads in place (persistent) ------
        for &i in &write_idx {
            let e = &self.entries[i];
            let addr = self.db.record_addr(e.id);
            let mut buf = Vec::with_capacity(8 + e.old_payload.len());
            buf.extend_from_slice(&(e.version + 1).to_le_bytes());
            buf.extend_from_slice(e.new_payload.as_ref().expect("write entry"));
            self.coro.write_persistent(addr.offset(8), buf);
        }
        self.coro.post_send().await;
        self.coro.sync().await;
        if crash == Some(CrashPoint::AfterDataWrite) {
            return Ok(true);
        }

        // --- 6. unlock ----------------------------------------------------
        self.unlock(&write_idx).await;
        self.db.stats.committed.incr();
        Ok(false)
    }
}

impl DtxDb {
    /// Recovers from a coordinator crash using the undo log at
    /// `log_base` (host-side, as a takeover coordinator or the memory
    /// node's recovery agent would).
    ///
    /// For every logged record still locked by the crashed transaction,
    /// the old version and payload are restored and the lock cleared.
    /// Idempotent: re-running recovers nothing further. Returns the
    /// number of records rolled back.
    pub fn recover_from_log(&self, log_base: RemoteAddr) -> u32 {
        let blade = self
            .blades
            .iter()
            .find(|b| b.id() == log_base.blade)
            .expect("log on a known blade");
        let txn_id = blade.read_u64(log_base.offset_bytes);
        let count = blade.read_u64(log_base.offset_bytes + 8);
        if txn_id == 0 || count == 0 || count > 64 {
            return 0; // empty or garbage log
        }
        let mut off = log_base.offset_bytes + 16;
        let mut undone = 0;
        for _ in 0..count {
            let table = blade.read_u64(off) as usize;
            let key = blade.read_u64(off + 8);
            let version = blade.read_u64(off + 16);
            if table >= self.tables.len() || key >= self.tables[table].records {
                break; // torn log tail: stop (the txn never finished logging)
            }
            let payload_bytes = self.tables[table].payload_bytes;
            let padded = payload_bytes.div_ceil(8) * 8;
            let old_payload = blade.read_bytes(off + 24, payload_bytes);
            off += 24 + padded;

            let rid = RecordId { table, key };
            let addr = self.record_addr(rid);
            let rec_blade = &self.blades[(key % self.blades.len() as u64) as usize];
            if rec_blade.read_u64(addr.offset_bytes) == txn_id {
                rec_blade.write_u64(addr.offset_bytes + 8, version);
                rec_blade.write_bytes(addr.offset_bytes + 16, &old_payload);
                rec_blade.write_u64(addr.offset_bytes, 0);
                undone += 1;
            }
        }
        undone
    }
}

/// Backs off after an abort using the thread's conflict-avoidance state —
/// the SMART-DTX refactor's use of §4.3 (a no-op when backoff is off).
pub async fn backoff_after_abort(coro: &SmartCoro, attempt: u32) {
    let conflict = coro.thread().conflict();
    if conflict.backoff_enabled() {
        let d = conflict.backoff_delay(attempt, coro.thread().handle());
        coro.thread().handle().sleep(d).await;
    }
}
