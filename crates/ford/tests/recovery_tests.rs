//! Crash-recovery tests: a coordinator dies mid-commit, the undo log
//! rolls the database back to a consistent state.

use std::rc::Rc;

use smart::{SmartConfig, SmartContext};
use smart_ford::{CrashPoint, DtxDb, RecordId, SmallBank};
use smart_rnic::{Cluster, ClusterConfig};
use smart_rt::Simulation;
use smart_workloads::smallbank::SmallBankTxn;

fn setup() -> (Simulation, Cluster, Rc<DtxDb>) {
    let sim = Simulation::new(21);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    let db = DtxDb::create(cluster.blades(), &[("t", 16, 8)]);
    for k in 0..16 {
        db.load_record(RecordId { table: 0, key: k }, &(100 + k).to_le_bytes());
    }
    (sim, cluster, db)
}

async fn staged_txn<'a>(
    db: &'a DtxDb,
    coro: &'a smart::SmartCoro,
    log: smart_rnic::RemoteAddr,
    keys: &[u64],
) -> smart_ford::Txn<'a> {
    let mut t = db.begin(coro, log);
    let ids: Vec<RecordId> = keys
        .iter()
        .map(|&k| RecordId { table: 0, key: k })
        .collect();
    let vals = t.fetch(&ids).await.expect("fetch");
    for (i, &rid) in ids.iter().enumerate() {
        let cur = u64::from_le_bytes(vals[i].clone().try_into().expect("8B"));
        t.stage(rid, (cur + 1000).to_le_bytes().to_vec());
    }
    t
}

fn crash_then_recover(point: CrashPoint, expect_locked: bool, expect_data_changed: bool) {
    let (mut sim, _cluster, db) = setup();
    let ctx = SmartContext::new(
        _cluster.compute(0),
        _cluster.blades(),
        SmartConfig::smart_full(1),
    );
    let thread = ctx.create_thread();
    let log = db.alloc_log_region();
    let db2 = Rc::clone(&db);
    sim.block_on(async move {
        let coro = thread.coroutine();
        let t = staged_txn(&db2, &coro, log, &[3, 7]).await;
        let crashed = t.commit_crashing_at(point).await.expect("no abort");
        assert!(crashed, "crash point must be reached");
    });

    // Inspect the wreckage.
    let (lock3, _v3, p3) = db.read_record_direct(RecordId { table: 0, key: 3 });
    assert_eq!(lock3 != 0, expect_locked, "lock state after {point:?}");
    let data3 = u64::from_le_bytes(p3.try_into().expect("8B"));
    assert_eq!(
        data3 != 103,
        expect_data_changed,
        "data state after {point:?}"
    );

    // Recover: everything must be back to the pre-transaction state.
    let undone = db.recover_from_log(log);
    if expect_locked && matches!(point, CrashPoint::AfterLog | CrashPoint::AfterDataWrite) {
        assert_eq!(undone, 2, "both records rolled back");
    }
    for (k, base) in [(3u64, 103u64), (7, 107)] {
        let (lock, version, payload) = db.read_record_direct(RecordId { table: 0, key: k });
        assert_eq!(lock, 0, "key {k} unlocked after recovery");
        let val = u64::from_le_bytes(payload.try_into().expect("8B"));
        if matches!(point, CrashPoint::AfterLog | CrashPoint::AfterDataWrite) {
            assert_eq!(val, base, "key {k} restored");
            assert_eq!(version, 0, "key {k} version restored");
        }
    }
    // Idempotence.
    assert_eq!(db.recover_from_log(log), 0, "second recovery is a no-op");
}

#[test]
fn crash_after_log_rolls_back_cleanly() {
    crash_then_recover(CrashPoint::AfterLog, true, false);
}

#[test]
fn crash_after_data_write_restores_old_values() {
    crash_then_recover(CrashPoint::AfterDataWrite, true, true);
}

#[test]
fn crash_after_lock_leaves_locks_only() {
    // No log was written for THIS txn yet: recovery of the (stale/empty)
    // log must not touch the locked records' data.
    let (mut sim, cluster, db) = setup();
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(1),
    );
    let thread = ctx.create_thread();
    let log = db.alloc_log_region();
    let db2 = Rc::clone(&db);
    sim.block_on(async move {
        let coro = thread.coroutine();
        let t = staged_txn(&db2, &coro, log, &[5]).await;
        assert!(t
            .commit_crashing_at(CrashPoint::AfterLock)
            .await
            .expect("no abort"));
    });
    let (lock, _, payload) = db.read_record_direct(RecordId { table: 0, key: 5 });
    assert_ne!(lock, 0, "lock held by the crashed txn");
    assert_eq!(u64::from_le_bytes(payload.try_into().expect("8B")), 105);
    assert_eq!(db.recover_from_log(log), 0, "empty log recovers nothing");
}

#[test]
fn recovery_preserves_other_transactions_work() {
    let (mut sim, cluster, db) = setup();
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(2),
    );
    let log_a = db.alloc_log_region();
    let log_b = db.alloc_log_region();

    // Txn A commits normally on key 1; txn B crashes on keys 3 and 7.
    let thread_a = ctx.create_thread();
    let db_a = Rc::clone(&db);
    sim.block_on(async move {
        let coro = thread_a.coroutine();
        let mut t = db_a.begin(&coro, log_a);
        let rid = RecordId { table: 0, key: 1 };
        t.fetch(&[rid]).await.expect("fetch");
        t.stage(rid, 999u64.to_le_bytes().to_vec());
        t.commit().await.expect("commit");
    });
    let thread_b = ctx.create_thread();
    let db_b = Rc::clone(&db);
    sim.block_on(async move {
        let coro = thread_b.coroutine();
        let t = staged_txn(&db_b, &coro, log_b, &[3, 7]).await;
        assert!(t
            .commit_crashing_at(CrashPoint::AfterDataWrite)
            .await
            .expect("no abort"));
    });

    assert_eq!(db.recover_from_log(log_b), 2);
    // A's committed write survives B's rollback.
    let (_, v1, p1) = db.read_record_direct(RecordId { table: 0, key: 1 });
    assert_eq!(u64::from_le_bytes(p1.try_into().expect("8B")), 999);
    assert_eq!(v1, 1);
}

#[test]
fn smallbank_conserves_money_across_a_crash_and_recovery() {
    let mut sim = Simulation::new(8);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    let bank = SmallBank::create(cluster.blades(), 32, 1_000);
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(1),
    );
    let thread = ctx.create_thread();
    let log = bank.db().alloc_log_region();

    // Run a conserving transfer that crashes after the in-place write —
    // the most dangerous point: money has moved but locks are held.
    let db = Rc::clone(bank.db());
    sim.block_on(async move {
        let coro = thread.coroutine();
        // Build the SendPayment manually through the engine so we can
        // crash it (SmallBank::execute always commits fully).
        let from = RecordId { table: 1, key: 2 }; // checking
        let to = RecordId { table: 1, key: 9 };
        let mut t = db.begin(&coro, log);
        let vals = t.fetch(&[from, to]).await.expect("fetch");
        let f = i64::from_le_bytes(vals[0].clone().try_into().expect("8B"));
        let g = i64::from_le_bytes(vals[1].clone().try_into().expect("8B"));
        t.stage(from, (f - 500).to_le_bytes().to_vec());
        t.stage(to, (g + 500).to_le_bytes().to_vec());
        assert!(t
            .commit_crashing_at(CrashPoint::AfterDataWrite)
            .await
            .expect("no abort"));
    });

    // The books are balanced only after recovery (total_money also
    // asserts that no lock is left behind).
    assert_eq!(bank.db().recover_from_log(log), 2);
    assert_eq!(bank.total_money(), 32 * 2 * 1_000);
    let _ = SmallBankTxn::Balance { account: 0 };
}
