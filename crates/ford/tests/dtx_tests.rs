//! Transaction engine correctness: isolation, durability-order artifacts
//! and the SmallBank conservation invariant under concurrency.

use std::rc::Rc;

use smart::{QpPolicy, SmartConfig, SmartContext};
use smart_ford::{backoff_after_abort, DtxDb, DtxError, RecordId, SmallBank, Tatp};
use smart_rnic::{Cluster, ClusterConfig};
use smart_rt::{Duration, Simulation};
use smart_workloads::smallbank::{SmallBankGenerator, SmallBankTxn};
use smart_workloads::tatp::TatpTxn;

fn cluster(seed: u64, blades: usize) -> (Simulation, Cluster) {
    let sim = Simulation::new(seed);
    let c = Cluster::new(sim.handle(), ClusterConfig::new(1, blades));
    (sim, c)
}

#[test]
fn single_txn_commit_updates_record_and_version() {
    let (mut sim, cluster) = cluster(1, 2);
    let db = DtxDb::create(cluster.blades(), &[("t", 64, 8)]);
    for k in 0..64 {
        db.load_record(RecordId { table: 0, key: k }, &100u64.to_le_bytes());
    }
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(1),
    );
    let thread = ctx.create_thread();
    let log = db.alloc_log_region();
    let db2 = Rc::clone(&db);
    sim.block_on(async move {
        let coro = thread.coroutine();
        let rid = RecordId { table: 0, key: 5 };
        let mut t = db2.begin(&coro, log);
        let vals = t.fetch(&[rid]).await.expect("fetch");
        assert_eq!(vals[0], 100u64.to_le_bytes());
        t.stage(rid, 250u64.to_le_bytes().to_vec());
        t.commit().await.expect("commit");
    });
    let (lock, version, payload) = db.read_record_direct(RecordId { table: 0, key: 5 });
    assert_eq!(lock, 0);
    assert_eq!(version, 1);
    assert_eq!(payload, 250u64.to_le_bytes());
    assert_eq!(db.stats().committed.get(), 1);
    assert_eq!(db.stats().aborted.get(), 0);
}

#[test]
fn read_only_txn_commits_without_writes() {
    let (mut sim, cluster) = cluster(2, 1);
    let db = DtxDb::create(cluster.blades(), &[("t", 8, 8)]);
    db.load_record(RecordId { table: 0, key: 3 }, &7u64.to_le_bytes());
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(1),
    );
    let thread = ctx.create_thread();
    let log = db.alloc_log_region();
    let db2 = Rc::clone(&db);
    sim.block_on(async move {
        let coro = thread.coroutine();
        let mut t = db2.begin(&coro, log);
        let vals = t
            .fetch(&[RecordId { table: 0, key: 3 }])
            .await
            .expect("fetch");
        assert_eq!(vals[0], 7u64.to_le_bytes());
        assert!(!t.is_read_write());
        t.commit().await.expect("read-only commit");
    });
    let (_, version, _) = db.read_record_direct(RecordId { table: 0, key: 3 });
    assert_eq!(version, 0, "read-only txns must not bump versions");
}

#[test]
fn conflicting_writers_serialize_one_aborts_or_retries() {
    let (mut sim, cluster) = cluster(3, 2);
    let db = DtxDb::create(cluster.blades(), &[("t", 4, 8)]);
    db.load_record(RecordId { table: 0, key: 0 }, &0u64.to_le_bytes());
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(8),
    );
    // 8 concurrent increment transactions on the same record.
    let mut joins = Vec::new();
    for _ in 0..8 {
        let thread = ctx.create_thread();
        let db = Rc::clone(&db);
        let log = db.alloc_log_region();
        joins.push(sim.spawn(async move {
            let coro = thread.coroutine();
            let rid = RecordId { table: 0, key: 0 };
            for _ in 0..5 {
                let mut attempt = 0u32;
                loop {
                    let mut t = db.begin(&coro, log);
                    match t.fetch(&[rid]).await {
                        Ok(vals) => {
                            let cur = u64::from_le_bytes(vals[0].clone().try_into().expect("8B"));
                            t.stage(rid, (cur + 1).to_le_bytes().to_vec());
                            match t.commit().await {
                                Ok(()) => break,
                                Err(_) => {
                                    attempt += 1;
                                    backoff_after_abort(&coro, attempt).await;
                                }
                            }
                        }
                        Err(_) => {
                            attempt += 1;
                            backoff_after_abort(&coro, attempt).await;
                        }
                    }
                }
            }
        }));
    }
    sim.run_for(Duration::from_secs(3));
    for j in &joins {
        assert!(j.is_finished(), "all writers must converge");
    }
    let (lock, version, payload) = db.read_record_direct(RecordId { table: 0, key: 0 });
    assert_eq!(lock, 0);
    // Serializable increments: the counter equals the number of commits.
    assert_eq!(u64::from_le_bytes(payload.try_into().expect("8B")), 40);
    assert_eq!(version, 40);
    assert_eq!(db.stats().committed.get(), 40);
}

#[test]
fn smallbank_conserves_money_under_concurrency() {
    let (mut sim, cluster) = cluster(4, 2);
    let accounts = 64;
    let initial = 10_000i64;
    let bank = SmallBank::create(cluster.blades(), accounts, initial);
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(8),
    );
    let deltas = Rc::new(std::cell::Cell::new(0i64));
    let mut joins = Vec::new();
    for t in 0..8 {
        let thread = ctx.create_thread();
        let bank = Rc::clone(&bank);
        let log = bank.db().alloc_log_region();
        let deltas = Rc::clone(&deltas);
        joins.push(sim.spawn(async move {
            let coro = thread.coroutine();
            let mut g = SmallBankGenerator::new(64, 1000 + t);
            for _ in 0..30 {
                // Only money-conserving transactions for the invariant.
                let txn = loop {
                    match g.next_txn() {
                        SmallBankTxn::Amalgamate { from, to } => {
                            break SmallBankTxn::Amalgamate { from, to }
                        }
                        SmallBankTxn::SendPayment { from, to, amount } => {
                            break SmallBankTxn::SendPayment { from, to, amount }
                        }
                        SmallBankTxn::Balance { account } => {
                            break SmallBankTxn::Balance { account }
                        }
                        _ => continue,
                    }
                };
                let mut attempt = 0u32;
                loop {
                    match bank.execute(&coro, log, &txn).await {
                        Ok(()) => break,
                        Err(_) => {
                            attempt += 1;
                            backoff_after_abort(&coro, attempt).await;
                        }
                    }
                }
                deltas.set(deltas.get()); // conserving txns only
            }
        }));
    }
    sim.run_for(Duration::from_secs(5));
    for j in &joins {
        assert!(j.is_finished(), "all clients must finish");
    }
    assert_eq!(
        bank.total_money(),
        accounts as i64 * 2 * initial,
        "money must be conserved by Amalgamate/SendPayment/Balance"
    );
    assert_eq!(bank.stats().committed.get(), 8 * 30);
}

#[test]
fn smallbank_deposits_add_up_exactly() {
    let (mut sim, cluster) = cluster(5, 2);
    let bank = SmallBank::create(cluster.blades(), 16, 0);
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::baseline(QpPolicy::PerThreadQp, 4),
    );
    let mut joins = Vec::new();
    for t in 0..4u64 {
        let thread = ctx.create_thread();
        let bank = Rc::clone(&bank);
        let log = bank.db().alloc_log_region();
        joins.push(sim.spawn(async move {
            let coro = thread.coroutine();
            for i in 0..25 {
                let txn = SmallBankTxn::DepositChecking {
                    account: (t * 25 + i) % 16,
                    amount: 10,
                };
                let mut attempt = 0;
                while bank.execute(&coro, log, &txn).await.is_err() {
                    attempt += 1;
                    backoff_after_abort(&coro, attempt).await;
                }
            }
        }));
    }
    sim.run_for(Duration::from_secs(5));
    for j in &joins {
        assert!(j.is_finished());
    }
    assert_eq!(bank.total_money(), 4 * 25 * 10);
}

#[test]
fn tatp_update_location_is_visible() {
    let (mut sim, cluster) = cluster(6, 2);
    let tatp = Tatp::create(cluster.blades(), 32);
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(1),
    );
    let thread = ctx.create_thread();
    let log = tatp.db().alloc_log_region();
    let t2 = Rc::clone(&tatp);
    sim.block_on(async move {
        let coro = thread.coroutine();
        let txn = TatpTxn::UpdateLocation {
            sid: 9,
            location: 0xDEAD_BEEF,
        };
        t2.execute(&coro, log, &txn).await.expect("commit");
        // And a few read-only transactions flow through unharmed.
        for txn in [
            TatpTxn::GetSubscriberData { sid: 9 },
            TatpTxn::GetAccessData { sid: 9, ai_type: 2 },
            TatpTxn::GetNewDestination { sid: 9, sf_type: 1 },
        ] {
            t2.execute(&coro, log, &txn)
                .await
                .expect("read-only commit");
        }
    });
    assert_eq!(tatp.location_direct(9), 0xDEAD_BEEF);
    assert_eq!(tatp.stats().committed.get(), 4);
}

#[test]
fn tatp_insert_then_delete_call_forwarding() {
    let (mut sim, cluster) = cluster(7, 1);
    let tatp = Tatp::create(cluster.blades(), 8);
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(1),
    );
    let thread = ctx.create_thread();
    let log = tatp.db().alloc_log_region();
    let t2 = Rc::clone(&tatp);
    sim.block_on(async move {
        let coro = thread.coroutine();
        let ins = TatpTxn::InsertCallForwarding {
            sid: 3,
            sf_type: 2,
            start_time: 8,
        };
        let del = TatpTxn::DeleteCallForwarding {
            sid: 3,
            sf_type: 2,
            start_time: 8,
        };
        t2.execute(&coro, log, &ins).await.expect("insert");
        t2.execute(&coro, log, &del).await.expect("delete");
    });
    assert_eq!(tatp.stats().committed.get(), 2);
    assert_eq!(tatp.stats().abort_rate(), 0.0);
}

#[test]
fn fetch_conflict_surfaces_when_record_locked() {
    let (mut sim, cluster) = cluster(8, 1);
    let db = DtxDb::create(cluster.blades(), &[("t", 4, 8)]);
    db.load_record(RecordId { table: 0, key: 1 }, &1u64.to_le_bytes());
    // Simulate a crashed/holding coordinator: set the lock word directly.
    let addr = db.record_addr(RecordId { table: 0, key: 1 });
    cluster.blade(0).write_u64(addr.offset_bytes, 999);
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(1),
    );
    let thread = ctx.create_thread();
    let log = db.alloc_log_region();
    let db2 = Rc::clone(&db);
    sim.block_on(async move {
        let coro = thread.coroutine();
        let mut t = db2.begin(&coro, log);
        let err = t.fetch(&[RecordId { table: 0, key: 1 }]).await.unwrap_err();
        assert_eq!(err, DtxError::FetchConflict);
    });
}
