//! A small SVG line-chart renderer: linear or log axes, multiple series,
//! markers, legend — enough to regenerate the paper's figures from the
//! benchmark CSVs without any plotting dependency.

use std::fmt::Write as _;

/// Axis scale.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Log10 axis (all values must be positive).
    Log10,
}

/// One named series of (x, y) points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

/// Chart configuration and data.
#[derive(Clone, Debug)]
pub struct Chart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// X-axis scale.
    pub x_scale: Scale,
    /// Y-axis scale.
    pub y_scale: Scale,
    /// Series to draw.
    pub series: Vec<Series>,
    /// Canvas width in px.
    pub width: u32,
    /// Canvas height in px.
    pub height: u32,
}

const PALETTE: &[&str] = &[
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
];
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 48.0;

impl Chart {
    /// A chart with sensible defaults (720×440, linear axes).
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Chart {
        Chart {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            series: Vec::new(),
            width: 720,
            height: 440,
        }
    }

    /// Adds a series.
    pub fn series(&mut self, name: &str, points: Vec<(f64, f64)>) -> &mut Chart {
        self.series.push(Series {
            name: name.to_string(),
            points,
        });
        self
    }

    /// Sets the y scale.
    pub fn y_log(&mut self) -> &mut Chart {
        self.y_scale = Scale::Log10;
        self
    }

    /// Sets the x scale.
    pub fn x_log(&mut self) -> &mut Chart {
        self.x_scale = Scale::Log10;
        self
    }

    fn data_bounds(&self) -> ((f64, f64), (f64, f64)) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                xs.push(x);
                ys.push(y);
            }
        }
        let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = |v: &[f64]| v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        ((min(&xs), max(&xs)), (min(&ys), max(&ys)))
    }

    /// Renders the chart to an SVG string.
    ///
    /// # Panics
    ///
    /// Panics if there are no data points, or if a log axis sees a
    /// non-positive value.
    pub fn to_svg(&self) -> String {
        assert!(
            self.series.iter().any(|s| !s.points.is_empty()),
            "chart has no data points"
        );
        let ((x0, x1), (y0, y1)) = self.data_bounds();
        let (x0, x1) = pad_domain(x0, x1, self.x_scale);
        let (y0, y1) = pad_domain(y0, y1, self.y_scale);

        let plot_w = self.width as f64 - MARGIN_L - MARGIN_R;
        let plot_h = self.height as f64 - MARGIN_T - MARGIN_B;
        let sx = |x: f64| MARGIN_L + project(x, x0, x1, self.x_scale) * plot_w;
        let sy = |y: f64| MARGIN_T + (1.0 - project(y, y0, y1, self.y_scale)) * plot_h;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"#,
            w = self.width,
            h = self.height
        );
        let _ = write!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);
        let _ = write!(
            svg,
            r#"<text x="{}" y="20" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
            self.width / 2,
            escape(&self.title)
        );

        // Gridlines + ticks.
        for t in ticks(x0, x1, self.x_scale) {
            let x = sx(t);
            let _ = write!(
                svg,
                r##"<line x1="{x:.1}" y1="{t0:.1}" x2="{x:.1}" y2="{t1:.1}" stroke="#eee"/>"##,
                t0 = MARGIN_T,
                t1 = MARGIN_T + plot_h
            );
            let _ = write!(
                svg,
                r#"<text x="{x:.1}" y="{y:.1}" text-anchor="middle">{}</text>"#,
                fmt_tick(t),
                y = MARGIN_T + plot_h + 16.0
            );
        }
        for t in ticks(y0, y1, self.y_scale) {
            let y = sy(t);
            let _ = write!(
                svg,
                r##"<line x1="{x0:.1}" y1="{y:.1}" x2="{x1:.1}" y2="{y:.1}" stroke="#eee"/>"##,
                x0 = MARGIN_L,
                x1 = MARGIN_L + plot_w
            );
            let _ = write!(
                svg,
                r#"<text x="{x:.1}" y="{yy:.1}" text-anchor="end">{}</text>"#,
                fmt_tick(t),
                x = MARGIN_L - 6.0,
                yy = y + 4.0
            );
        }
        // Axes.
        let _ = write!(
            svg,
            r##"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="none" stroke="#333"/>"##,
            x = MARGIN_L,
            y = MARGIN_T,
            w = plot_w,
            h = plot_h
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            self.height as f64 - 10.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );

        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let mut path = String::new();
            for (j, &(x, y)) in s.points.iter().enumerate() {
                let _ = write!(
                    path,
                    "{}{:.1},{:.1} ",
                    if j == 0 { "M" } else { "L" },
                    sx(x),
                    sy(y)
                );
            }
            let _ = write!(
                svg,
                r#"<path d="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                path.trim_end()
            );
            for &(x, y) in &s.points {
                let _ = write!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                    sx(x),
                    sy(y)
                );
            }
            // Legend entry.
            let ly = MARGIN_T + 14.0 + i as f64 * 16.0;
            let lx = MARGIN_L + plot_w - 150.0;
            let _ = write!(
                svg,
                r#"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"#,
                lx + 18.0
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}">{}</text>"#,
                lx + 24.0,
                ly + 4.0,
                escape(&s.name)
            );
        }
        svg.push_str("</svg>");
        svg
    }
}

fn pad_domain(lo: f64, hi: f64, scale: Scale) -> (f64, f64) {
    match scale {
        Scale::Linear => {
            let span = (hi - lo).max(1e-12);
            let lo = if lo > 0.0 && lo < span * 0.5 {
                0.0
            } else {
                lo - span * 0.05
            };
            (lo, hi + span * 0.05)
        }
        Scale::Log10 => {
            assert!(lo > 0.0, "log axis requires positive values, got {lo}");
            (lo / 1.3, hi * 1.3)
        }
    }
}

fn project(v: f64, lo: f64, hi: f64, scale: Scale) -> f64 {
    match scale {
        Scale::Linear => (v - lo) / (hi - lo).max(1e-12),
        Scale::Log10 => {
            assert!(v > 0.0, "log axis requires positive values, got {v}");
            (v.log10() - lo.log10()) / (hi.log10() - lo.log10()).max(1e-12)
        }
    }
}

/// Computes "nice" tick positions covering `[lo, hi]`.
pub fn ticks(lo: f64, hi: f64, scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Linear => {
            let span = (hi - lo).max(1e-12);
            let raw_step = span / 6.0;
            let mag = 10f64.powf(raw_step.log10().floor());
            let step = [1.0, 2.0, 5.0, 10.0]
                .iter()
                .map(|m| m * mag)
                .find(|s| span / s <= 7.0)
                .unwrap_or(mag * 10.0);
            let mut t = (lo / step).ceil() * step;
            let mut out = Vec::new();
            while t <= hi + step * 1e-9 {
                out.push(if t.abs() < step * 1e-9 { 0.0 } else { t });
                t += step;
            }
            out
        }
        Scale::Log10 => {
            let mut out = Vec::new();
            let mut decade = 10f64.powf(lo.log10().floor());
            while decade <= hi * 1.0001 {
                if decade >= lo * 0.9999 {
                    out.push(decade);
                }
                decade *= 10.0;
            }
            if out.len() < 2 {
                out = vec![lo, hi];
            }
            out
        }
    }
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1_000_000.0 {
        format!("{:.0}M", v / 1e6)
    } else if v.abs() >= 10_000.0 {
        format!("{:.0}k", v / 1e3)
    } else if v.fract().abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chart() -> Chart {
        let mut c = Chart::new("Title", "threads", "MOPS");
        c.series("A", vec![(1.0, 2.0), (2.0, 4.0), (4.0, 8.0)]);
        c.series("B", vec![(1.0, 1.0), (2.0, 1.5), (4.0, 1.75)]);
        c
    }

    #[test]
    fn svg_contains_structure() {
        let svg = sample_chart().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2, "one path per series");
        assert_eq!(svg.matches("<circle").count(), 6, "one marker per point");
        assert!(svg.contains("Title"));
        assert!(svg.contains("threads"));
        assert!(svg.contains("MOPS"));
        assert!(svg.contains(">A</text>"));
        assert!(svg.contains(">B</text>"));
    }

    #[test]
    fn titles_are_escaped() {
        let mut c = Chart::new("a<b & c>", "x", "y");
        c.series("s", vec![(1.0, 1.0)]);
        let svg = c.to_svg();
        assert!(svg.contains("a&lt;b &amp; c&gt;"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn linear_ticks_are_nice_and_cover() {
        let t = ticks(0.0, 100.0, Scale::Linear);
        assert_eq!(t, vec![0.0, 20.0, 40.0, 60.0, 80.0, 100.0]);
        let t = ticks(3.0, 7.0, Scale::Linear);
        assert!(t.len() >= 4 && t.len() <= 8);
        assert!(t.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn log_ticks_are_decades() {
        let t = ticks(0.5, 2000.0, Scale::Log10);
        assert_eq!(t, vec![1.0, 10.0, 100.0, 1000.0]);
    }

    #[test]
    fn log_axis_renders() {
        let mut c = Chart::new("log", "x", "y");
        c.series("s", vec![(1.0, 1.0), (10.0, 100.0), (100.0, 10000.0)]);
        c.y_log().x_log();
        let svg = c.to_svg();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    #[should_panic(expected = "no data points")]
    fn empty_chart_panics() {
        let _ = Chart::new("t", "x", "y").to_svg();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn log_axis_rejects_nonpositive() {
        let mut c = Chart::new("t", "x", "y");
        c.series("s", vec![(0.0, 1.0)]);
        c.x_log();
        let _ = c.to_svg();
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(fmt_tick(0.0), "0");
        assert_eq!(fmt_tick(2_000_000.0), "2M");
        assert_eq!(fmt_tick(50_000.0), "50k");
        assert_eq!(fmt_tick(42.0), "42");
        assert_eq!(fmt_tick(1.5), "1.5");
    }
}
