//! Minimal CSV reading for the benchmark outputs (simple comma-separated
//! files with a header row; no quoting — the harness never emits commas
//! inside cells).

use std::collections::HashMap;
use std::fmt;

/// A parsed CSV: header + rows, with typed column accessors.
#[derive(Clone, Debug, PartialEq)]
pub struct Csv {
    headers: Vec<String>,
    index: HashMap<String, usize>,
    rows: Vec<Vec<String>>,
}

/// Errors from [`Csv::parse`] and the accessors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header row.
    Empty,
    /// A row had a different arity than the header.
    RaggedRow {
        /// 1-based data-row number.
        row: usize,
    },
    /// A requested column does not exist.
    NoSuchColumn(String),
    /// A cell could not be parsed as a number.
    NotANumber {
        /// Column name.
        column: String,
        /// 0-based row index.
        row: usize,
        /// The offending cell text.
        cell: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Empty => write!(f, "empty csv input"),
            CsvError::RaggedRow { row } => write!(f, "row {row} has wrong arity"),
            CsvError::NoSuchColumn(c) => write!(f, "no column named {c:?}"),
            CsvError::NotANumber { column, row, cell } => {
                write!(
                    f,
                    "cell {cell:?} at row {row} of column {column:?} is not a number"
                )
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl Csv {
    /// Parses CSV text.
    ///
    /// # Errors
    ///
    /// [`CsvError::Empty`] without a header; [`CsvError::RaggedRow`] on
    /// arity mismatches.
    pub fn parse(text: &str) -> Result<Csv, CsvError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_line = lines.next().ok_or(CsvError::Empty)?;
        let headers: Vec<String> = header_line
            .split(',')
            .map(|s| s.trim().to_string())
            .collect();
        let index = headers
            .iter()
            .enumerate()
            .map(|(i, h)| (h.clone(), i))
            .collect();
        let mut rows = Vec::new();
        for (i, line) in lines.enumerate() {
            let cells: Vec<String> = line.split(',').map(|s| s.trim().to_string()).collect();
            if cells.len() != headers.len() {
                return Err(CsvError::RaggedRow { row: i + 1 });
            }
            rows.push(cells);
        }
        Ok(Csv {
            headers,
            index,
            rows,
        })
    }

    /// Column headers, in file order.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn col(&self, name: &str) -> Result<usize, CsvError> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| CsvError::NoSuchColumn(name.to_string()))
    }

    /// The string cells of a column.
    ///
    /// # Errors
    ///
    /// [`CsvError::NoSuchColumn`].
    pub fn strings(&self, name: &str) -> Result<Vec<&str>, CsvError> {
        let c = self.col(name)?;
        Ok(self.rows.iter().map(|r| r[c].as_str()).collect())
    }

    /// The numeric cells of a column.
    ///
    /// # Errors
    ///
    /// [`CsvError::NoSuchColumn`] or [`CsvError::NotANumber`].
    pub fn numbers(&self, name: &str) -> Result<Vec<f64>, CsvError> {
        let c = self.col(name)?;
        self.rows
            .iter()
            .enumerate()
            .map(|(row, r)| {
                r[c].parse::<f64>().map_err(|_| CsvError::NotANumber {
                    column: name.to_string(),
                    row,
                    cell: r[c].clone(),
                })
            })
            .collect()
    }

    /// The distinct values of a column, in first-appearance order.
    ///
    /// # Errors
    ///
    /// [`CsvError::NoSuchColumn`].
    pub fn distinct(&self, name: &str) -> Result<Vec<String>, CsvError> {
        let c = self.col(name)?;
        let mut seen = Vec::new();
        for r in &self.rows {
            if !seen.contains(&r[c]) {
                seen.push(r[c].clone());
            }
        }
        Ok(seen)
    }

    /// Returns a view containing only the rows where `column == value`.
    ///
    /// # Errors
    ///
    /// [`CsvError::NoSuchColumn`].
    pub fn filter(&self, column: &str, value: &str) -> Result<Csv, CsvError> {
        let c = self.col(column)?;
        Ok(Csv {
            headers: self.headers.clone(),
            index: self.index.clone(),
            rows: self
                .rows
                .iter()
                .filter(|r| r[c] == value)
                .cloned()
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "sys,threads,mops\nA,2,1.5\nA,4,2.5\nB,2,0.5\n";

    #[test]
    fn parse_and_access() {
        let csv = Csv::parse(SAMPLE).expect("parses");
        assert_eq!(csv.len(), 3);
        assert_eq!(csv.headers(), &["sys", "threads", "mops"]);
        assert_eq!(csv.numbers("threads").expect("nums"), vec![2.0, 4.0, 2.0]);
        assert_eq!(csv.strings("sys").expect("strs"), vec!["A", "A", "B"]);
    }

    #[test]
    fn distinct_preserves_order() {
        let csv = Csv::parse(SAMPLE).expect("parses");
        assert_eq!(csv.distinct("sys").expect("distinct"), vec!["A", "B"]);
    }

    #[test]
    fn filter_narrows_rows() {
        let csv = Csv::parse(SAMPLE).expect("parses");
        let a = csv.filter("sys", "A").expect("filter");
        assert_eq!(a.len(), 2);
        assert_eq!(a.numbers("mops").expect("nums"), vec![1.5, 2.5]);
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(Csv::parse(""), Err(CsvError::Empty));
        assert_eq!(Csv::parse("a,b\n1\n"), Err(CsvError::RaggedRow { row: 1 }));
        let csv = Csv::parse(SAMPLE).expect("parses");
        assert!(matches!(
            csv.numbers("sys"),
            Err(CsvError::NotANumber { .. })
        ));
        assert!(matches!(
            csv.numbers("nope"),
            Err(CsvError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = Csv::parse("a,b\n\n1,2\n\n3,4\n").expect("parses");
        assert_eq!(csv.len(), 2);
    }
}
