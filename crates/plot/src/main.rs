//! `render_figures`: turns every benchmark CSV in `crates/bench/bench_out`
//! into an SVG chart next to it — the reproduction's equivalent of the
//! artifact's `ae/plot` scripts.

use std::fs;
use std::path::{Path, PathBuf};

use smart_plot::{grouped_series, Chart, Csv};

struct FigureSpec {
    csv: &'static str,
    title: &'static str,
    group: Option<&'static str>,
    /// Extra column to facet by (one SVG per distinct value).
    facet: Option<&'static str>,
    x: &'static str,
    y: &'static str,
    x_label: &'static str,
    y_label: &'static str,
    y_log: bool,
    x_log: bool,
}

const SPECS: &[FigureSpec] = &[
    FigureSpec {
        csv: "fig03",
        title: "Figure 3: QP allocation policies",
        group: Some("policy"),
        facet: Some("op"),
        x: "threads",
        y: "mops",
        x_label: "threads",
        y_label: "MOPS",
        y_log: false,
        x_log: false,
    },
    FigureSpec {
        csv: "fig04",
        title: "Figure 4a: throughput vs outstanding WRs",
        group: Some("threads"),
        facet: Some("op"),
        x: "owr_per_thread",
        y: "mops",
        x_label: "outstanding WRs per thread",
        y_label: "MOPS",
        y_log: false,
        x_log: true,
    },
    FigureSpec {
        csv: "fig05a",
        title: "Figure 5a: RACE updates vs threads",
        group: None,
        facet: None,
        x: "threads",
        y: "p99_us",
        x_label: "threads",
        y_label: "p99 latency (us)",
        y_log: true,
        x_log: false,
    },
    FigureSpec {
        csv: "fig07_scaleup",
        title: "Figure 7a-c: hash table scale-up",
        group: Some("system"),
        facet: Some("mix"),
        x: "threads",
        y: "mops",
        x_label: "threads",
        y_label: "MOPS",
        y_log: false,
        x_log: false,
    },
    FigureSpec {
        csv: "fig07_scaleout",
        title: "Figure 7d-f: hash table scale-out",
        group: Some("system"),
        facet: Some("mix"),
        x: "threads_total",
        y: "mops",
        x_label: "total threads",
        y_label: "MOPS",
        y_log: false,
        x_log: false,
    },
    FigureSpec {
        csv: "fig08",
        title: "Figure 8: technique breakdown",
        group: Some("config"),
        facet: Some("mix"),
        x: "threads",
        y: "mops",
        x_label: "threads",
        y_label: "MOPS",
        y_log: false,
        x_log: false,
    },
    FigureSpec {
        csv: "fig09",
        title: "Figure 9: throughput vs median latency",
        group: Some("system"),
        facet: None,
        x: "mops",
        y: "p50_us",
        x_label: "MOPS",
        y_label: "median latency (us)",
        y_log: true,
        x_log: false,
    },
    FigureSpec {
        csv: "fig10",
        title: "Figure 10: DTX scalability",
        group: Some("system"),
        facet: Some("workload"),
        x: "threads",
        y: "mtps",
        x_label: "threads",
        y_label: "Mtxn/s",
        y_log: false,
        x_log: false,
    },
    FigureSpec {
        csv: "fig11",
        title: "Figure 11: DTX throughput vs latency",
        group: Some("system"),
        facet: Some("workload"),
        x: "mtps",
        y: "p50_us",
        x_label: "Mtxn/s",
        y_label: "median latency (us)",
        y_log: true,
        x_log: false,
    },
    FigureSpec {
        csv: "fig12_scaleup",
        title: "Figure 12a-c: B+Tree scale-up",
        group: Some("system"),
        facet: Some("mix"),
        x: "threads",
        y: "mops",
        x_label: "threads",
        y_label: "MOPS",
        y_log: false,
        x_log: false,
    },
    FigureSpec {
        csv: "fig12_scaleout",
        title: "Figure 12d-f: B+Tree scale-out",
        group: Some("system"),
        facet: Some("mix"),
        x: "threads_total",
        y: "mops",
        x_label: "total threads",
        y_label: "MOPS",
        y_log: false,
        x_log: false,
    },
    FigureSpec {
        csv: "fig13a",
        title: "Figure 13a: allocation + throttling vs threads",
        group: Some("config"),
        facet: None,
        x: "threads",
        y: "mops",
        x_label: "threads",
        y_label: "MOPS",
        y_log: false,
        x_log: false,
    },
    FigureSpec {
        csv: "fig13b",
        title: "Figure 13b: allocation + throttling vs batch size",
        group: Some("config"),
        facet: None,
        x: "batch",
        y: "mops",
        x_label: "work request batch size",
        y_label: "MOPS",
        y_log: false,
        x_log: true,
    },
    FigureSpec {
        csv: "fig14ab",
        title: "Figure 14a: conflict avoidance throughput",
        group: Some("config"),
        facet: None,
        x: "threads",
        y: "mops",
        x_label: "threads",
        y_label: "MOPS",
        y_log: false,
        x_log: false,
    },
    FigureSpec {
        csv: "fig14c",
        title: "Figure 14c: retry distribution (96 threads)",
        group: Some("config"),
        facet: None,
        x: "retries",
        y: "fraction",
        x_label: "retries per update",
        y_label: "fraction of updates",
        y_log: false,
        x_log: false,
    },
];

fn find_bench_out() -> Option<PathBuf> {
    for c in ["crates/bench/bench_out", "bench_out", "../bench/bench_out"] {
        let p = PathBuf::from(c);
        if p.is_dir() {
            return Some(p);
        }
    }
    None
}

fn render(dir: &Path, spec: &FigureSpec) -> Result<usize, Box<dyn std::error::Error>> {
    let path = dir.join(format!("{}.csv", spec.csv));
    let text = fs::read_to_string(&path)?;
    let full = Csv::parse(&text)?;
    let facets: Vec<Option<String>> = match spec.facet {
        Some(col) => full.distinct(col)?.into_iter().map(Some).collect(),
        None => vec![None],
    };
    let mut written = 0;
    for facet in facets {
        let (csv, suffix) = match (&facet, spec.facet) {
            (Some(v), Some(col)) => (full.filter(col, v)?, format!("_{v}")),
            _ => (full.clone(), String::new()),
        };
        if csv.is_empty() {
            continue;
        }
        let title = match &facet {
            Some(v) => format!("{} ({v})", spec.title),
            None => spec.title.to_string(),
        };
        let mut chart = Chart::new(&title, spec.x_label, spec.y_label);
        match spec.group {
            Some(group) => {
                for s in grouped_series(&csv, group, spec.x, spec.y)? {
                    chart.series(&s.name, s.points);
                }
            }
            None => {
                let points = csv
                    .numbers(spec.x)?
                    .into_iter()
                    .zip(csv.numbers(spec.y)?)
                    .collect();
                chart.series(spec.y, points);
            }
        }
        if spec.y_log {
            chart.y_log();
        }
        if spec.x_log {
            chart.x_log();
        }
        let out = dir.join(format!(
            "{}{}.svg",
            spec.csv,
            suffix.replace([' ', '/'], "_")
        ));
        fs::write(&out, chart.to_svg())?;
        println!("wrote {}", out.display());
        written += 1;
    }
    Ok(written)
}

fn main() {
    let Some(dir) = find_bench_out() else {
        eprintln!("no bench_out directory found — run `cargo bench --workspace` first");
        std::process::exit(1);
    };
    let mut total = 0;
    for spec in SPECS {
        match render(&dir, spec) {
            Ok(n) => total += n,
            Err(e) => eprintln!("skipping {}: {e}", spec.csv),
        }
    }
    println!("{total} figures rendered into {}", dir.display());
}
