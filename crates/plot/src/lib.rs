#![warn(missing_docs)]

//! # smart-plot — SVG figures from the benchmark CSVs
//!
//! The SMART artifact ships Python scripts that turn raw CSVs into the
//! paper's figures; this crate is the dependency-free Rust equivalent:
//! a tiny CSV reader ([`Csv`]) and an SVG line-chart renderer
//! ([`Chart`]). The `render_figures` binary walks
//! `crates/bench/bench_out/*.csv` and writes one SVG per figure:
//!
//! ```bash
//! cargo bench --workspace              # produce the CSVs
//! cargo run --release -p smart-plot    # render bench_out/*.svg
//! ```
//!
//! ```rust
//! use smart_plot::{Chart, Csv};
//!
//! let csv = Csv::parse("threads,mops\n2,10\n4,19\n8,35\n").expect("parse");
//! let mut chart = Chart::new("Scaling", "threads", "MOPS");
//! chart.series(
//!     "smart",
//!     csv.numbers("threads").expect("x")
//!         .into_iter()
//!         .zip(csv.numbers("mops").expect("y"))
//!         .collect(),
//! );
//! let svg = chart.to_svg();
//! assert!(svg.contains("<svg"));
//! ```

pub mod chart;
pub mod csv;

pub use chart::{Chart, Scale, Series};
pub use csv::{Csv, CsvError};

/// Builds one series per distinct value of `group` from `csv`, using the
/// numeric columns `x` and `y` — the shape every figure CSV shares.
///
/// # Errors
///
/// Propagates [`CsvError`] for missing/NaN columns.
pub fn grouped_series(csv: &Csv, group: &str, x: &str, y: &str) -> Result<Vec<Series>, CsvError> {
    let mut out = Vec::new();
    for g in csv.distinct(group)? {
        let sub = csv.filter(group, &g)?;
        let points = sub.numbers(x)?.into_iter().zip(sub.numbers(y)?).collect();
        out.push(Series { name: g, points });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_series_splits_by_column() {
        let csv = Csv::parse("sys,x,y\nA,1,10\nB,1,20\nA,2,11\nB,2,21\n").expect("parse");
        let series = grouped_series(&csv, "sys", "x", "y").expect("groups");
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].name, "A");
        assert_eq!(series[0].points, vec![(1.0, 10.0), (2.0, 11.0)]);
        assert_eq!(series[1].points, vec![(1.0, 20.0), (2.0, 21.0)]);
    }
}
