//! The serving layer's admission policy: token-bucket rate limiting plus
//! queue-depth shedding, decided synchronously at each arrival.
//!
//! Shedding at the door is what makes the tail of *admitted* operations
//! meaningful: an overloaded open-loop system otherwise grows its queue
//! without bound and every percentile degenerates to "how long did the
//! run last". Rejections are typed ([`Rejected`]) so reports can separate
//! rate-policy sheds from backlog sheds.

use smart::TokenBucket;
use smart_rt::SimTime;

/// Why an arrival was turned away.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The token bucket was empty: the offered rate exceeds the
    /// provisioned admission rate.
    Throttled,
    /// The session queue was at capacity: admitted work is not draining
    /// fast enough.
    QueueFull,
}

impl Rejected {
    /// Stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Rejected::Throttled => "throttled",
            Rejected::QueueFull => "queue_full",
        }
    }
}

/// Admission policy knobs.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Sustained admission rate, ops per virtual second.
    pub rate: u64,
    /// Token-bucket burst capacity.
    pub burst: u64,
    /// Maximum backlog (queued, not-yet-executing ops) before sheds.
    pub max_queue: usize,
}

impl AdmissionConfig {
    /// A controller that admits everything: the rate gate never engages
    /// and the queue bound is effectively infinite. Wiring this must be
    /// observationally identical to running with no controller at all —
    /// `tests/serve.rs` holds that identity.
    pub fn unlimited() -> AdmissionConfig {
        AdmissionConfig {
            rate: 0,
            burst: 0,
            max_queue: usize::MAX,
        }
    }

    /// True when neither the rate gate nor the queue bound can ever
    /// reject an arrival.
    pub fn is_unlimited(&self) -> bool {
        self.rate == 0 && self.max_queue == usize::MAX
    }
}

/// The admission controller: applies [`AdmissionConfig`] at each arrival.
#[derive(Debug)]
pub struct AdmissionController {
    bucket: Option<TokenBucket>,
    max_queue: usize,
}

impl AdmissionController {
    /// Builds the controller; a zero `rate` disables the token bucket
    /// (queue-depth shedding may still apply).
    pub fn new(cfg: &AdmissionConfig) -> AdmissionController {
        AdmissionController {
            bucket: (cfg.rate > 0).then(|| TokenBucket::new(cfg.rate, cfg.burst.max(1))),
            max_queue: cfg.max_queue,
        }
    }

    /// Decides one arrival given the current backlog depth. Queue
    /// pressure is checked first: when the system is already drowning,
    /// spending a token on an op we then drop would double-charge the
    /// rate budget.
    pub fn admit(&self, now: SimTime, queue_depth: usize) -> Result<(), Rejected> {
        if queue_depth >= self.max_queue {
            return Err(Rejected::QueueFull);
        }
        match &self.bucket {
            Some(b) if !b.try_take(now) => Err(Rejected::Throttled),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn queue_pressure_wins_over_rate() {
        let c = AdmissionController::new(&AdmissionConfig {
            rate: 1_000_000,
            burst: 1,
            max_queue: 4,
        });
        assert_eq!(c.admit(t(0), 4), Err(Rejected::QueueFull));
        assert_eq!(c.admit(t(0), 3), Ok(()));
        assert_eq!(c.admit(t(0), 3), Err(Rejected::Throttled));
        assert_eq!(c.admit(t(1_000), 3), Ok(()), "refilled after 1 µs");
    }

    #[test]
    fn unlimited_never_rejects() {
        let c = AdmissionController::new(&AdmissionConfig::unlimited());
        assert!(AdmissionConfig::unlimited().is_unlimited());
        for i in 0..10_000 {
            assert_eq!(c.admit(t(0), i), Ok(()));
        }
    }
}
