//! # smart-serve — open-loop serving scenarios over SMART
//!
//! This crate turns the SMART stack into a *serving system under test*:
//! a seeded open-loop arrival process (Poisson interarrivals thinned
//! against a piecewise diurnal rate plan, Zipfian key popularity) drives
//! 100k+ logical client sessions multiplexed onto a bounded pool of
//! SMART coroutines, behind an admission controller whose typed sheds
//! keep the reported tail latencies meaningful, while a scripted
//! membership plan takes memory blades out of — and back into — the
//! roster mid-run.
//!
//! Everything is deterministic: one seed fixes the arrival stream, the
//! admission decisions, the membership schedule and the fault recovery
//! interleaving, so two identical [`ServeSpec`]s render byte-identical
//! [`ServeReport`]s. That determinism is load-bearing for the tier-1
//! gates in `tests/serve.rs` and for regression-diffing `fig_serve`
//! sweeps.
//!
//! Module map:
//!
//! * [`arrival`] — rate plans, thinned Poisson arrivals, op synthesis;
//! * [`admission`] — token-bucket + queue-depth admission control;
//! * [`session`] — the logical-client session pool and request queue;
//! * [`membership`] — scripted blade leave/join windows lowered onto
//!   the router and the fault layer;
//! * [`engine`] — the scenario driver gluing it all together;
//! * [`decomposed`] — the same scenario with memory blades running as
//!   real PDES engine domains behind typed request/completion channels;
//! * [`report`] — per-phase SLO stats and the byte-stable report.

pub mod admission;
pub mod arrival;
pub mod decomposed;
pub mod engine;
pub mod membership;
pub mod report;
pub mod session;

pub use admission::{AdmissionConfig, AdmissionController, Rejected};
pub use arrival::{Arrival, ArrivalEngine, PhaseSpec, RatePlan, ServeOp};
pub use decomposed::{run_serve_decomposed, DecomposedServe};
pub use engine::{run_serve, ServeSpec};
pub use membership::{MembershipEvent, MembershipPlan};
pub use report::{PhaseStats, ServeReport};
pub use session::{Request, SessionPool};
