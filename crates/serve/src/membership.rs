//! Scripted elastic membership: planned blade leave/join windows that
//! drive both the router view and the fault layer's crash machinery.
//!
//! A [`MembershipPlan`] is the control-plane story ("blade 2 leaves at
//! 40 ms and rejoins at 70 ms"); it lowers onto two existing mechanisms:
//!
//! * the [`ShardRouter`](smart::ShardRouter) view changes at the
//!   *announced* leave instant, so new requests re-route to survivors,
//!   and again at the rejoin instant;
//! * a [`FaultPlan`] blade-crash window starting one `grace` after the
//!   announcement, so requests already in flight toward the leaving
//!   blade either drain within the grace or go through the `try_*`
//!   recovery path exactly as an unplanned crash would (epoch bump, MR
//!   revocation, re-registration on restart).
//!
//! The driver task itself only mutates the router and stamps trace
//! markers; physically downing the blade stays the fault injector's job,
//! which keeps chaos scripting in one place.

use std::rc::Rc;

use smart::ShardRouter;
use smart_fault::FaultPlan;
use smart_rt::{Duration, SimHandle};
use smart_trace::{Actor, Args, Category};

/// One scripted leave/rejoin window.
#[derive(Clone, Copy, Debug)]
pub struct MembershipEvent {
    /// When the blade announces its departure (router re-homes here).
    pub leave_at: Duration,
    /// Roster index of the leaving blade.
    pub blade: u32,
    /// How long the blade stays out; it rejoins at `leave_at + down_for`.
    pub down_for: Duration,
}

/// A deterministic membership script for one run.
#[derive(Clone, Debug, Default)]
pub struct MembershipPlan {
    events: Vec<MembershipEvent>,
    grace: Duration,
}

impl MembershipPlan {
    /// An empty script: the roster never changes.
    pub fn new() -> MembershipPlan {
        MembershipPlan {
            events: Vec::new(),
            grace: Duration::from_micros(20),
        }
    }

    /// Sets the drain grace between the router re-homing away from a
    /// leaving blade and the blade actually going down.
    #[must_use]
    pub fn with_grace(mut self, grace: Duration) -> Self {
        self.grace = grace;
        self
    }

    /// Scripts blade `blade` to leave at `leave_at` and rejoin
    /// `down_for` later.
    #[must_use]
    pub fn leave_at(mut self, leave_at: Duration, blade: u32, down_for: Duration) -> Self {
        assert!(down_for > self.grace, "outage must outlast the drain grace");
        self.events.push(MembershipEvent {
            leave_at,
            blade,
            down_for,
        });
        self
    }

    /// The scripted windows, in insertion order.
    pub fn events(&self) -> &[MembershipEvent] {
        &self.events
    }

    /// The drain grace (see [`with_grace`](MembershipPlan::with_grace)).
    pub fn grace(&self) -> Duration {
        self.grace
    }

    /// Lowers the script onto the fault layer: each window becomes a
    /// blade crash at `leave_at + grace` lasting until the rejoin
    /// instant.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for ev in &self.events {
            plan =
                plan.blade_crash_at(ev.leave_at + self.grace, ev.blade, ev.down_for - self.grace);
        }
        plan
    }

    /// Spawn-ready driver: walks the script in time order, flipping the
    /// router view at each announced leave and each rejoin, stamping a
    /// [`Category::Serve`] marker for both transitions.
    pub async fn drive(self, handle: SimHandle, router: Rc<ShardRouter>) {
        // (time, blade, is_join) transitions, sorted by time.
        let mut steps: Vec<(Duration, u32, bool)> = Vec::new();
        for ev in &self.events {
            steps.push((ev.leave_at, ev.blade, false));
            steps.push((ev.leave_at + ev.down_for, ev.blade, true));
        }
        steps.sort_by_key(|&(at, blade, join)| (at, blade, join));
        let start = handle.now();
        for (at, blade, join) in steps {
            handle.sleep_until(start + at).await;
            if join {
                router.join(blade as usize);
            } else {
                router.leave(blade as usize);
            }
            handle.with_tracer(|sink| {
                sink.instant(
                    handle.now().as_nanos(),
                    Actor::SYSTEM,
                    Category::Serve,
                    if join { "blade_join" } else { "blade_leave" },
                    Args::two("blade", blade as u64, "epoch", router.epoch()),
                );
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_fault::FaultEventKind;
    use smart_rt::Simulation;

    #[test]
    fn lowers_to_a_crash_window_inside_the_announced_outage() {
        let plan = MembershipPlan::new()
            .with_grace(Duration::from_micros(10))
            .leave_at(Duration::from_millis(1), 2, Duration::from_micros(300));
        let fp = plan.fault_plan();
        assert_eq!(fp.events().len(), 1);
        let ev = &fp.events()[0];
        assert_eq!(ev.at, Duration::from_millis(1) + Duration::from_micros(10));
        match ev.kind {
            FaultEventKind::BladeCrash { blade, down_for } => {
                assert_eq!(blade, 2);
                assert_eq!(down_for, Duration::from_micros(290));
            }
            _ => panic!("expected a blade crash"),
        }
        assert!(fp.eventually_heals());
    }

    #[test]
    fn driver_flips_the_router_at_leave_and_rejoin() {
        let mut sim = Simulation::new(0);
        let router = Rc::new(ShardRouter::new(3, 6));
        let plan = MembershipPlan::new().leave_at(
            Duration::from_micros(100),
            1,
            Duration::from_micros(200),
        );
        let h = sim.handle();
        let r = Rc::clone(&router);
        sim.spawn(plan.drive(h, r));
        sim.run_for(Duration::from_micros(150));
        assert!(!router.is_live(1), "left at 100 µs");
        assert_eq!(router.epoch(), 1);
        sim.run_for(Duration::from_micros(200));
        assert!(router.is_live(1), "rejoined at 300 µs");
        assert_eq!(router.epoch(), 2);
    }
}
