//! The serve scenario engine: wires arrivals, admission, sessions,
//! routing and membership into one deterministic run.
//!
//! One [`run_serve`] call is one complete open-loop experiment:
//!
//! 1. build a cluster and carve a per-`(shard, blade)` slab of balance
//!    cells, seeding the initial balances on each shard's first home;
//! 2. install the fault injector with the membership script's crash
//!    windows (plus any caller-supplied background chaos);
//! 3. start `threads × depth` worker coroutines draining the session
//!    queue with SMART `try_*` verbs, routed through the epoch-versioned
//!    [`ShardRouter`];
//! 4. run the dispatcher (arrival engine + admission controller), the
//!    membership driver and a phase clerk that snapshots recovery
//!    histograms at each phase boundary;
//! 5. drain, audit (balance ledger vs blade memory, credit
//!    conservation, no stranded workers) and assemble the
//!    [`ServeReport`].
//!
//! Transfers are executed as two FAA rounds (debit, then credit), each
//! through the fallible recovery path, and every *applied* delta is
//! folded into a client-side ledger; the final audit demands that the
//! wrapping sum of every cell on every blade equals the seeded total
//! plus that ledger — so a recovery bug that drops or double-applies a
//! work request is caught even while blades crash and rejoin mid-run.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use smart::{FaultError, ShardRouter, SmartConfig, SmartContext, SmartThread};
use smart_fault::{FaultInjector, FaultPlan};
use smart_rnic::{BladeConfig, Cluster, ClusterConfig, MemoryBlade, RemoteAddr};
use smart_rt::{Duration, Simulation};
use smart_trace::{Actor, Args, Category, LogHistogram, TraceSink};

use crate::admission::{AdmissionConfig, AdmissionController, Rejected};
use crate::arrival::{ArrivalEngine, RatePlan, ServeOp};
use crate::membership::MembershipPlan;
use crate::report::{digest_fold, PhaseStats, ServeReport, DIGEST_SEED};
use crate::session::{Request, SessionPool};

/// Everything that defines one serve run.
#[derive(Clone)]
pub struct ServeSpec {
    /// Simulation seed; the whole report is a function of it.
    pub seed: u64,
    /// Logical client population (sessions), e.g. 100_000.
    pub clients: usize,
    /// Simulated serving threads.
    pub threads: usize,
    /// Worker coroutines per thread (bounded session executors).
    pub depth: usize,
    /// Memory blades in the roster.
    pub blades: usize,
    /// Keyspace shards routed over the blades.
    pub shards: usize,
    /// Balance accounts spread over the shards.
    pub accounts: u64,
    /// Zipf skew of account popularity (0 ≤ θ < 1).
    pub theta: f64,
    /// Percent of arrivals that are read-only balance probes.
    pub probe_pct: u32,
    /// Initial balance seeded into every account.
    pub initial_balance: u64,
    /// The offered-load schedule (phases drive the report rows).
    pub plan: RatePlan,
    /// Admission policy; `None` runs open (no controller object at all).
    pub admission: Option<AdmissionConfig>,
    /// Scripted blade leave/join windows.
    pub membership: MembershipPlan,
    /// Extra background chaos merged into the membership fault plan.
    pub chaos: FaultPlan,
    /// Optional trace sink for serve-phase/admission/membership markers.
    pub trace: Option<TraceSink>,
    /// Virtual-time budget for draining after the plan ends.
    pub drain: Duration,
    /// Simulation worker threads (`1` = inline sequential run). Larger
    /// values host the run on a dedicated OS thread via
    /// [`smart_rt::pdes::host`] with a
    /// [`smart_rnic::DomainPlan::for_workers`] partition — the report is
    /// byte-identical either way (the PDES determinism contract).
    pub workers: usize,
}

impl ServeSpec {
    /// A spec with required scale parameters and conservative defaults
    /// (tune the public fields afterwards).
    pub fn new(seed: u64, clients: usize, plan: RatePlan) -> ServeSpec {
        ServeSpec {
            seed,
            clients,
            threads: 4,
            depth: 8,
            blades: 3,
            shards: 12,
            accounts: 4096,
            theta: 0.9,
            probe_pct: 50,
            initial_balance: 1_000,
            plan,
            admission: None,
            membership: MembershipPlan::new(),
            chaos: FaultPlan::new(),
            trace: None,
            drain: Duration::from_millis(50),
            workers: 1,
        }
    }
}

/// Shared per-run accumulators the dispatcher and workers write into.
pub(crate) struct Accum {
    pub(crate) phases: RefCell<Vec<PhaseStats>>,
    pub(crate) digest: Cell<u64>,
    /// Wrapping sum of every FAA delta that was confirmed applied.
    pub(crate) ledger: Cell<u64>,
}

impl Accum {
    pub(crate) fn new(plan: &RatePlan) -> Accum {
        Accum {
            phases: RefCell::new(
                plan.phases()
                    .iter()
                    .map(|p| PhaseStats {
                        name: p.name,
                        dur_ns: p.dur.as_nanos() as u64,
                        ..Default::default()
                    })
                    .collect(),
            ),
            digest: Cell::new(DIGEST_SEED),
            ledger: Cell::new(0),
        }
    }
}

/// Fixed-layout addressing of one account's balance cell.
pub(crate) struct Slabs {
    /// `bases[shard][blade]` — byte offset of the shard's slab on that
    /// blade. Every blade hosts a replica slab for every shard, so any
    /// membership view has a home cell ready.
    pub(crate) bases: Vec<Vec<u64>>,
    pub(crate) shards: usize,
    pub(crate) cells_per_shard: u64,
}

impl Slabs {
    pub(crate) fn carve(blades: &[Rc<MemoryBlade>], shards: usize, accounts: u64) -> Slabs {
        let cells_per_shard = accounts.div_ceil(shards as u64);
        let bases = (0..shards)
            .map(|_| {
                blades
                    .iter()
                    .map(|b| b.alloc(cells_per_shard * 8, 8))
                    .collect()
            })
            .collect();
        Slabs {
            bases,
            shards,
            cells_per_shard,
        }
    }

    pub(crate) fn shard_of(&self, account: u64) -> usize {
        (account % self.shards as u64) as usize
    }

    pub(crate) fn cell(&self, account: u64, blade: usize) -> u64 {
        let idx = account / self.shards as u64;
        debug_assert!(idx < self.cells_per_shard);
        self.bases[self.shard_of(account)][blade] + idx * 8
    }

    /// The account's cell at its *current* home under `router`'s view.
    pub(crate) fn addr(
        &self,
        account: u64,
        router: &ShardRouter,
        blades: &[Rc<MemoryBlade>],
    ) -> RemoteAddr {
        let home = router.home(self.shard_of(account));
        RemoteAddr::new(blades[home].id(), self.cell(account, home))
    }
}

pub(crate) fn describe_admission(admission: &Option<AdmissionConfig>) -> String {
    match admission {
        None => "open (no controller)".to_string(),
        Some(c) if c.is_unlimited() => "controller present, unlimited".to_string(),
        Some(c) => {
            let q = if c.max_queue == usize::MAX {
                "unbounded".to_string()
            } else {
                c.max_queue.to_string()
            };
            format!("rate {}/s burst {} queue {}", c.rate, c.burst, q)
        }
    }
}

/// Executes one admitted request; `Ok(delta)` carries the wrapping sum
/// of the FAA deltas that were applied (0 for probes).
pub(crate) async fn execute(
    coro: &smart::SmartCoro,
    req: &Request,
    slabs: &Slabs,
    router: &ShardRouter,
    blades: &[Rc<MemoryBlade>],
) -> Result<u64, FaultError> {
    match req.op {
        ServeOp::Probe { account } => {
            let _op = coro.op_scope_named("serve_probe").await;
            coro.try_read_sync(slabs.addr(account, router, blades), 8)
                .await?;
            Ok(0)
        }
        ServeOp::Transfer { from, to, amount } => {
            let _op = coro.op_scope_named("serve_transfer").await;
            // Debit first; nothing is applied if it fails, so a typed
            // error here leaves the ledger untouched.
            let debit = amount.wrapping_neg();
            coro.try_faa_sync(slabs.addr(from, router, blades), debit)
                .await?;
            // The debit is applied from here on: fold it into the
            // returned delta even if the credit round fails, so the
            // audit's expectation tracks what actually hit memory.
            match coro
                .try_faa_sync(slabs.addr(to, router, blades), amount)
                .await
            {
                Ok(_) => Ok(debit.wrapping_add(amount)),
                Err(e) => {
                    // Torn transfer: count the op as failed but keep the
                    // half that landed on the books.
                    coro.thread().stats().faults_seen.incr();
                    let _ = e;
                    Ok(debit)
                }
            }
        }
    }
}

/// Runs the scenario to completion and returns its deterministic report.
/// `spec.workers > 1` hosts the run on a dedicated OS thread; the report
/// is byte-identical to the inline run.
pub fn run_serve(spec: &ServeSpec) -> ServeReport {
    if spec.workers <= 1 {
        return run_serve_inline(spec);
    }
    assert!(
        spec.trace.is_none(),
        "a traced serve run cannot be hosted on a worker thread \
         (TraceSink is not Send); run with workers = 1 or trace at the \
         harness level"
    );
    // Destructure into the Send-safe plain-data fields and rebuild the
    // spec inside the hosting thread: the spec *type* is !Send only
    // because of the (empty) trace slot.
    let ServeSpec {
        seed,
        clients,
        threads,
        depth,
        blades,
        shards,
        accounts,
        theta,
        probe_pct,
        initial_balance,
        plan,
        admission,
        membership,
        chaos,
        trace: _,
        drain,
        workers,
    } = spec.clone();
    smart_rt::pdes::host(workers, move || {
        let spec = ServeSpec {
            seed,
            clients,
            threads,
            depth,
            blades,
            shards,
            accounts,
            theta,
            probe_pct,
            initial_balance,
            plan,
            admission,
            membership,
            chaos,
            trace: None,
            drain,
            workers,
        };
        run_serve_inline(&spec)
    })
}

pub(crate) fn run_serve_inline(spec: &ServeSpec) -> ServeReport {
    let mut sim = Simulation::new(spec.seed);
    if let Some(sink) = &spec.trace {
        sim.handle().install_tracer(sink.clone());
    }
    let cells = spec.accounts.div_ceil(spec.shards as u64) * 8;
    let region = (spec.shards as u64 * cells) + (1 << 20);
    let cluster = Cluster::new_with_plan(
        sim.handle(),
        ClusterConfig {
            compute_nodes: 1,
            memory_blades: spec.blades,
            blade: BladeConfig {
                region_bytes: region,
                ..Default::default()
            },
            ..Default::default()
        },
        smart_rnic::DomainPlan::for_workers(spec.workers, 1, spec.blades as u32),
    );
    let plan = spec.membership.fault_plan().merge(&spec.chaos);
    let injector = FaultInjector::install(&cluster, plan);

    let router = Rc::new(ShardRouter::new(spec.blades, spec.shards));
    let slabs = Rc::new(Slabs::carve(cluster.blades(), spec.shards, spec.accounts));
    for account in 0..spec.accounts {
        let home = router.home(slabs.shard_of(account));
        cluster.blades()[home].write_u64(slabs.cell(account, home), spec.initial_balance);
    }

    let accum = Rc::new(Accum::new(&spec.plan));
    let queue_cap = spec.admission.as_ref().map_or(usize::MAX, |c| c.max_queue);
    let pool = Rc::new(SessionPool::new(spec.clients, queue_cap));

    // Worker coroutines: the bounded execution side of the session pool.
    let mut cfg = SmartConfig::smart_full(spec.threads);
    cfg.expected_threads = spec.threads;
    cfg.coroutines_per_thread = spec.depth;
    let ctx = SmartContext::new(cluster.compute(0), cluster.blades(), cfg);
    let mut threads: Vec<Rc<SmartThread>> = Vec::new();
    let mut workers = Vec::new();
    for _ in 0..spec.threads {
        let thread = ctx.create_thread();
        for _ in 0..spec.depth {
            let coro = thread.coroutine();
            let queue = pool.queue().clone();
            let (pool, accum) = (Rc::clone(&pool), Rc::clone(&accum));
            let (router, slabs) = (Rc::clone(&router), Rc::clone(&slabs));
            let blades = cluster.blades().to_vec();
            let handle = sim.handle();
            workers.push(sim.spawn(async move {
                while let Some(req) = queue.recv().await {
                    let outcome = execute(&coro, &req, &slabs, &router, &blades).await;
                    let mut phases = accum.phases.borrow_mut();
                    let ph = &mut phases[req.phase];
                    match outcome {
                        Ok(delta) => {
                            accum.ledger.set(accum.ledger.get().wrapping_add(delta));
                            ph.completed += 1;
                            let lat = handle.now().as_nanos() - req.at.as_nanos() as u64;
                            ph.latency.record(lat);
                            drop(phases);
                            pool.complete(req.client);
                        }
                        Err(_) => ph.failed += 1,
                    }
                }
            }));
        }
        threads.push(thread);
    }

    // Membership driver.
    sim.spawn(
        spec.membership
            .clone()
            .drive(sim.handle(), Rc::clone(&router)),
    );

    // Phase clerk: marks transitions and snapshots the merged recovery
    // histogram at every phase boundary so per-phase CDFs can be diffed
    // out after the run.
    let snaps: Rc<RefCell<Vec<LogHistogram>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let handle = sim.handle();
        let threads = threads.clone();
        let snaps = Rc::clone(&snaps);
        let plan = spec.plan.clone();
        sim.spawn(async move {
            let start = handle.now();
            let mut at = Duration::ZERO;
            for (i, p) in plan.phases().iter().enumerate() {
                handle.with_tracer(|sink| {
                    sink.instant(
                        handle.now().as_nanos(),
                        Actor::SYSTEM,
                        Category::Serve,
                        "phase_start",
                        Args::one("phase", i as u64),
                    );
                });
                at += p.dur;
                handle.sleep_until(start + at).await;
                let mut merged = LogHistogram::new();
                for t in &threads {
                    merged.merge(&t.stats().recovery_ns.borrow());
                }
                snaps.borrow_mut().push(merged);
            }
        });
    }

    // Dispatcher: the open-loop arrival source plus admission decisions.
    let controller = spec.admission.as_ref().map(AdmissionController::new);
    {
        let mut engine = ArrivalEngine::new(
            spec.seed,
            spec.plan.clone(),
            spec.clients as u64,
            spec.accounts,
            spec.theta,
            spec.probe_pct,
        );
        let queue = pool.queue().clone();
        let accum = Rc::clone(&accum);
        let handle = sim.handle();
        sim.spawn(async move {
            let start = handle.now();
            while let Some(a) = engine.next_arrival() {
                handle.sleep_until(start + a.at).await;
                let decision = match &controller {
                    Some(c) => c.admit(handle.now(), queue.len()),
                    None => Ok(()),
                };
                let mut phases = accum.phases.borrow_mut();
                let ph = &mut phases[a.phase];
                ph.offered += 1;
                match decision {
                    Ok(()) => {
                        let req = Request {
                            at: a.at,
                            client: a.client,
                            phase: a.phase,
                            op: a.op,
                        };
                        match queue.try_push(req) {
                            Ok(()) => {
                                ph.admitted += 1;
                                drop(phases);
                                let mut d = accum.digest.get();
                                d = digest_fold(d, a.at.as_nanos() as u64);
                                d = digest_fold(d, a.client);
                                d = digest_fold(d, op_word(&a.op));
                                accum.digest.set(d);
                            }
                            Err(_) => ph.shed_queue += 1,
                        }
                    }
                    Err(why) => {
                        match why {
                            Rejected::Throttled => ph.shed_throttled += 1,
                            Rejected::QueueFull => ph.shed_queue += 1,
                        }
                        drop(phases);
                        handle.with_tracer(|sink| {
                            sink.instant(
                                handle.now().as_nanos(),
                                Actor::SYSTEM,
                                Category::Serve,
                                "shed",
                                Args::two("phase", a.phase as u64, "why", why as u64),
                            );
                        });
                    }
                }
            }
            queue.close();
        });
    }

    // Run the schedule, then drain in slices until the workers exit (the
    // queue closes when the dispatcher finishes, so this terminates as
    // soon as the backlog and in-flight recoveries clear).
    sim.run_for(spec.plan.total());
    let mut drained = Duration::ZERO;
    let slice = Duration::from_millis(1);
    while workers.iter().any(|w| !w.is_finished()) && drained < spec.drain {
        sim.run_for(slice);
        drained += slice;
    }

    // Audits.
    let mut conservation = Vec::new();
    if workers.iter().any(|w| !w.is_finished()) {
        conservation.push(format!(
            "{} worker coroutine(s) still stranded after the {}ms drain budget",
            workers.iter().filter(|w| !w.is_finished()).count(),
            spec.drain.as_millis()
        ));
    }
    for t in &threads {
        conservation.extend(t.throttle().conservation_violations());
    }
    let mut total: u64 = 0;
    for shard in 0..spec.shards {
        for (bi, blade) in cluster.blades().iter().enumerate() {
            for cell in 0..slabs.cells_per_shard {
                total = total.wrapping_add(blade.read_u64(slabs.bases[shard][bi] + cell * 8));
            }
        }
    }
    let expected = spec
        .accounts
        .wrapping_mul(spec.initial_balance)
        .wrapping_add(accum.ledger.get());
    if total != expected {
        conservation.push(format!(
            "balance ledger mismatch: blades hold {total}, ledger expects {expected}"
        ));
    }

    // Per-phase recovery CDFs from the clerk's boundary snapshots.
    let mut whole_recovery = LogHistogram::new();
    for t in &threads {
        whole_recovery.merge(&t.stats().recovery_ns.borrow());
    }
    {
        let snaps = snaps.borrow();
        let mut phases = accum.phases.borrow_mut();
        let empty = LogHistogram::new();
        for (i, ph) in phases.iter_mut().enumerate() {
            let at_end = snaps.get(i);
            let at_start = if i == 0 {
                Some(&empty)
            } else {
                snaps.get(i - 1)
            };
            if let (Some(end), Some(start)) = (at_end, at_start) {
                ph.recovery = end.diff(start);
            }
        }
        // Recoveries that completed after the last boundary (during the
        // drain) belong to the final phase.
        if let (Some(last_snap), Some(last_phase)) = (snaps.last(), phases.last_mut()) {
            let tail = whole_recovery.diff(last_snap);
            if tail.count() > 0 {
                last_phase.recovery.merge(&tail);
            }
        }
    }

    let (mut seen, mut recovered) = (0u64, 0u64);
    for t in &threads {
        seen += t.stats().faults_seen.get();
        recovered += t.stats().faults_recovered.get();
    }

    let phases = accum.phases.borrow().to_vec();
    ServeReport {
        seed: spec.seed,
        clients: spec.clients as u64,
        distinct_served: pool.distinct_served(),
        max_session_ops: pool.max_session_ops(),
        workers: (spec.threads, spec.depth),
        admission_desc: describe_admission(&spec.admission),
        membership_windows: spec.membership.events().len(),
        final_epoch: router.epoch(),
        queue_high_water: pool.queue().high_water(),
        phases,
        ops_digest: accum.digest.get(),
        faults_injected: injector.stats().total_injected(),
        faults_seen: seen,
        faults_recovered: recovered,
        recovery: whole_recovery,
        conservation,
        sim_events: sim.handle().metrics().events(),
    }
}

pub(crate) fn op_word(op: &ServeOp) -> u64 {
    match *op {
        ServeOp::Probe { account } => account << 1,
        ServeOp::Transfer { from, to, amount } => {
            (from << 1 | 1) ^ (to.rotate_left(21)) ^ (amount.rotate_left(42))
        }
    }
}
