//! Seeded open-loop arrival engine: non-homogeneous Poisson arrivals
//! over a piecewise-linear diurnal rate plan, with Zipf-skewed keys.
//!
//! The engine is a pure iterator over virtual time. Given a seed it emits
//! the exact same request sequence whether or not anything downstream
//! sheds, delays or drops the requests — that independence is what makes
//! the workload *open-loop* and what lets the admission-identity test in
//! `tests/serve.rs` compare runs with and without a controller.
//!
//! Non-homogeneous arrivals use Lewis–Shedler thinning: candidates are
//! drawn from a homogeneous Poisson process at the plan's peak rate and
//! accepted with probability `rate(t) / peak`, so the accepted process
//! has exactly the plan's time-varying intensity while every draw comes
//! from one forked [`SimRng`] stream.

use smart_rt::rng::SimRng;
use smart_rt::Duration;
use smart_workloads::zipf::ScrambledZipfian;

/// One segment of the diurnal rate plan: the offered load ramps linearly
/// from `start_rate` to `end_rate` (arrivals per virtual second) over
/// `dur`.
#[derive(Clone, Debug)]
pub struct PhaseSpec {
    /// Phase label used in reports (`"ramp"`, `"steady"`, `"churn"`, …).
    pub name: &'static str,
    /// Length of the phase.
    pub dur: Duration,
    /// Offered load at the phase's first instant, arrivals/sec.
    pub start_rate: f64,
    /// Offered load at the phase's last instant, arrivals/sec.
    pub end_rate: f64,
}

/// A piecewise-linear offered-load schedule.
#[derive(Clone, Debug, Default)]
pub struct RatePlan {
    phases: Vec<PhaseSpec>,
}

impl RatePlan {
    /// An empty plan; add segments with [`phase`](RatePlan::phase).
    pub fn new() -> RatePlan {
        RatePlan::default()
    }

    /// Appends a segment ramping from `start_rate` to `end_rate`
    /// arrivals/sec over `dur`.
    #[must_use]
    pub fn phase(
        mut self,
        name: &'static str,
        dur: Duration,
        start_rate: f64,
        end_rate: f64,
    ) -> Self {
        assert!(start_rate >= 0.0 && end_rate >= 0.0, "rates must be >= 0");
        self.phases.push(PhaseSpec {
            name,
            dur,
            start_rate,
            end_rate,
        });
        self
    }

    /// The segments, in schedule order.
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// Total schedule length.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|p| p.dur).sum()
    }

    /// Highest instantaneous rate anywhere in the plan.
    pub fn peak_rate(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| p.start_rate.max(p.end_rate))
            .fold(0.0, f64::max)
    }

    /// Index of the phase containing offset `t`, clamping past-the-end
    /// times into the last phase.
    pub fn phase_at(&self, t: Duration) -> usize {
        let mut acc = Duration::ZERO;
        for (i, p) in self.phases.iter().enumerate() {
            acc += p.dur;
            if t < acc {
                return i;
            }
        }
        self.phases.len().saturating_sub(1)
    }

    /// Instantaneous offered load at offset `t`, linearly interpolated
    /// within the containing phase (0 past the end of the plan).
    pub fn rate_at(&self, t: Duration) -> f64 {
        let mut start = Duration::ZERO;
        for p in &self.phases {
            let end = start + p.dur;
            if t < end {
                let frac = if p.dur.is_zero() {
                    0.0
                } else {
                    (t - start).as_secs_f64() / p.dur.as_secs_f64()
                };
                return p.start_rate + (p.end_rate - p.start_rate) * frac;
            }
            start = end;
        }
        0.0
    }
}

/// What an arriving client wants done.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeOp {
    /// Read the account's balance cell at its current home.
    Probe {
        /// Account to probe.
        account: u64,
    },
    /// Move `amount` from `from` to `to` as a debit/credit FAA pair —
    /// the SmallBank-style op whose global balance sum is conserved.
    Transfer {
        /// Debited account.
        from: u64,
        /// Credited account.
        to: u64,
        /// Amount moved.
        amount: u64,
    },
}

/// One open-loop arrival: who, what, and when.
#[derive(Clone, Copy, Debug)]
pub struct Arrival {
    /// Offset from simulation start at which the request arrives.
    pub at: Duration,
    /// Logical client issuing the request.
    pub client: u64,
    /// Index of the rate-plan phase the arrival falls into.
    pub phase: usize,
    /// The requested operation.
    pub op: ServeOp,
}

/// The seeded arrival stream.
pub struct ArrivalEngine {
    rng: SimRng,
    plan: RatePlan,
    peak: f64,
    clients: u64,
    zipf: ScrambledZipfian,
    accounts: u64,
    probe_pct: u32,
    t: Duration,
    emitted: u64,
}

impl ArrivalEngine {
    /// An engine drawing from its own forked PRNG stream.
    ///
    /// `clients` logical clients issue requests against `accounts`
    /// accounts with Zipf(θ = `theta`) popularity skew; `probe_pct` % of
    /// requests are balance probes, the rest transfers.
    pub fn new(
        seed: u64,
        plan: RatePlan,
        clients: u64,
        accounts: u64,
        theta: f64,
        probe_pct: u32,
    ) -> ArrivalEngine {
        assert!(clients > 0, "need at least one client");
        assert!(accounts >= 2, "transfers need two distinct accounts");
        let peak = plan.peak_rate();
        assert!(peak > 0.0, "rate plan never offers load");
        ArrivalEngine {
            rng: SimRng::new(seed ^ 0x5eed_a11e_7a61_e5e5),
            plan,
            peak,
            clients,
            zipf: ScrambledZipfian::new(accounts, theta),
            accounts,
            probe_pct: probe_pct.min(100),
            t: Duration::ZERO,
            emitted: 0,
        }
    }

    /// The schedule driving this engine.
    pub fn plan(&self) -> &RatePlan {
        &self.plan
    }

    /// Arrivals emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Draws an exponential interarrival at the peak rate.
    fn exp_step(&mut self) -> Duration {
        // Inverse CDF; clamp the uniform away from 0 so ln() is finite.
        let u = self.rng.next_f64().max(f64::MIN_POSITIVE);
        Duration::from_secs_f64((-u.ln()) / self.peak)
    }

    /// The next arrival, or `None` once the plan is exhausted.
    pub fn next_arrival(&mut self) -> Option<Arrival> {
        let horizon = self.plan.total();
        loop {
            let step = self.exp_step();
            self.t += step;
            if self.t >= horizon {
                return None;
            }
            // Thinning: accept with probability rate(t)/peak.
            let keep = self.rng.next_f64() * self.peak < self.plan.rate_at(self.t);
            if !keep {
                continue;
            }
            let client = self.rng.next_u64_below(self.clients);
            let op = if self.rng.next_u64_below(100) < self.probe_pct as u64 {
                ServeOp::Probe {
                    account: self.zipf.next(&mut self.rng),
                }
            } else {
                let from = self.zipf.next(&mut self.rng);
                let mut to = self.zipf.next(&mut self.rng);
                if to == from {
                    to = (to + 1) % self.accounts;
                }
                ServeOp::Transfer {
                    from,
                    to,
                    amount: 1 + self.rng.next_u64_below(100),
                }
            };
            self.emitted += 1;
            return Some(Arrival {
                at: self.t,
                client,
                phase: self.plan.phase_at(self.t),
                op,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> RatePlan {
        RatePlan::new()
            .phase("ramp", Duration::from_millis(2), 0.0, 1_000_000.0)
            .phase("steady", Duration::from_millis(4), 1_000_000.0, 1_000_000.0)
            .phase("churn", Duration::from_millis(4), 1_000_000.0, 500_000.0)
    }

    #[test]
    fn rate_plan_interpolates_and_classifies() {
        let p = plan();
        assert_eq!(p.total(), Duration::from_millis(10));
        assert_eq!(p.peak_rate(), 1_000_000.0);
        assert_eq!(p.phase_at(Duration::from_millis(1)), 0);
        assert_eq!(p.phase_at(Duration::from_millis(3)), 1);
        assert_eq!(p.phase_at(Duration::from_millis(9)), 2);
        assert_eq!(p.phase_at(Duration::from_millis(99)), 2);
        let mid_ramp = p.rate_at(Duration::from_millis(1));
        assert!(
            (mid_ramp - 500_000.0).abs() < 1.0,
            "ramp midpoint {mid_ramp}"
        );
        assert_eq!(p.rate_at(Duration::from_millis(5)), 1_000_000.0);
        assert_eq!(p.rate_at(Duration::from_millis(20)), 0.0);
    }

    #[test]
    fn same_seed_same_stream() {
        let stream = |seed| {
            let mut e = ArrivalEngine::new(seed, plan(), 1_000, 64, 0.9, 50);
            let mut v = Vec::new();
            while let Some(a) = e.next_arrival() {
                v.push(format!("{a:?}"));
            }
            v
        };
        assert_eq!(stream(7), stream(7));
        assert_ne!(stream(7), stream(8));
    }

    #[test]
    fn realized_rate_tracks_the_plan() {
        let mut e = ArrivalEngine::new(3, plan(), 10_000, 1_000, 0.99, 50);
        let (mut ramp, mut steady) = (0u64, 0u64);
        while let Some(a) = e.next_arrival() {
            match a.phase {
                0 => ramp += 1,
                1 => steady += 1,
                _ => {}
            }
            assert!(a.at < plan().total());
            assert!(a.client < 10_000);
        }
        // Expected: ramp integrates to 1000 arrivals, steady to 4000.
        assert!((800..=1200).contains(&ramp), "ramp arrivals {ramp}");
        assert!((3700..=4300).contains(&steady), "steady arrivals {steady}");
    }

    #[test]
    fn transfers_never_self_transfer() {
        let mut e = ArrivalEngine::new(11, plan(), 100, 2, 0.5, 0);
        let mut seen = 0;
        while let Some(a) = e.next_arrival() {
            if let ServeOp::Transfer { from, to, .. } = a.op {
                assert_ne!(from, to);
                seen += 1;
            }
        }
        assert!(seen > 0);
    }
}
