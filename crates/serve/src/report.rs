//! Deterministic SLO reporting for a serve run.
//!
//! Everything here is plain data filled by the engine: per-phase counts
//! and latency/recovery histograms, whole-run audits, and a seeded
//! digest of the admitted op stream. [`ServeReport::render`] is the
//! byte-stable human-readable form (two same-seed runs must produce
//! identical bytes — `tests/serve.rs` gates that), and
//! [`ServeReport::stream_signature`] is the subset that must also be
//! invariant between "no admission controller" and "controller that
//! never sheds".

use std::fmt::Write as _;

use smart_trace::LogHistogram;

/// Per-phase serving statistics, keyed by the rate plan's phases.
#[derive(Clone, Debug, Default)]
pub struct PhaseStats {
    /// Phase label from the rate plan.
    pub name: &'static str,
    /// Phase length in virtual nanoseconds.
    pub dur_ns: u64,
    /// Open-loop arrivals whose timestamp fell in this phase.
    pub offered: u64,
    /// Arrivals the admission controller let in.
    pub admitted: u64,
    /// Admitted ops that completed successfully.
    pub completed: u64,
    /// Admitted ops that surfaced a typed fault error.
    pub failed: u64,
    /// Arrivals shed by the token bucket.
    pub shed_throttled: u64,
    /// Arrivals shed by the queue-depth bound.
    pub shed_queue: u64,
    /// End-to-end latency (arrival → completion) of completed ops, ns.
    pub latency: LogHistogram,
    /// Fault-recovery delays observed during this phase's window, ns.
    pub recovery: LogHistogram,
}

impl PhaseStats {
    /// Arrivals shed for any reason.
    pub fn shed(&self) -> u64 {
        self.shed_throttled + self.shed_queue
    }

    /// Offered load over the phase window, ops/sec.
    pub fn offered_rate(&self) -> f64 {
        self.offered as f64 / (self.dur_ns as f64 / 1e9)
    }

    /// Completed-op throughput over the phase window, ops/sec.
    pub fn goodput(&self) -> f64 {
        self.completed as f64 / (self.dur_ns as f64 / 1e9)
    }

    /// Fraction of arrivals shed, in percent.
    pub fn shed_pct(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed() as f64 * 100.0 / self.offered as f64
        }
    }

    fn row(&self) -> String {
        let q = |q: f64| self.latency.quantile(q) as f64 / 1_000.0;
        let recov = if self.recovery.count() == 0 {
            "-".to_string()
        } else {
            format!(
                "{}x p99 {:.1}us",
                self.recovery.count(),
                self.recovery.quantile(0.99) as f64 / 1_000.0
            )
        };
        format!(
            "{:<8} {:>9} {:>9} {:>6.2}% {:>11.0} {:>11.0} {:>9.1} {:>9.1} {:>9.1}  {}",
            self.name,
            self.offered,
            self.admitted,
            self.shed_pct(),
            self.offered_rate(),
            self.goodput(),
            q(0.50),
            q(0.99),
            q(0.999),
            recov,
        )
    }
}

/// The complete, deterministic result of one serve run.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Seed the run was driven by.
    pub seed: u64,
    /// Logical client population size.
    pub clients: u64,
    /// Distinct clients that completed at least one op.
    pub distinct_served: u64,
    /// Largest per-session completion count.
    pub max_session_ops: u32,
    /// Simulated threads × coroutines per thread.
    pub workers: (usize, usize),
    /// Human description of the admission policy (not part of the
    /// stream signature — "none" and "unlimited" differ here on purpose).
    pub admission_desc: String,
    /// Scripted membership windows.
    pub membership_windows: usize,
    /// Router epoch after the run (2 × completed windows).
    pub final_epoch: u64,
    /// Deepest request backlog ever observed.
    pub queue_high_water: usize,
    /// Per-phase statistics in plan order.
    pub phases: Vec<PhaseStats>,
    /// FNV-1a digest over the admitted op stream (order-sensitive).
    pub ops_digest: u64,
    /// Faults injected by the fault layer.
    pub faults_injected: u64,
    /// Faults seen by the recovery layer.
    pub faults_seen: u64,
    /// Faults recovered by the recovery layer.
    pub faults_recovered: u64,
    /// Whole-run recovery-delay distribution, ns.
    pub recovery: LogHistogram,
    /// Invariant-audit failures; empty means every audit passed.
    pub conservation: Vec<String>,
    /// Scheduler events processed (simulator cost of the run).
    pub sim_events: u64,
}

impl ServeReport {
    /// Sum over phases of `f`.
    fn total(&self, f: impl Fn(&PhaseStats) -> u64) -> u64 {
        self.phases.iter().map(f).sum()
    }

    /// Total arrivals across phases.
    pub fn offered(&self) -> u64 {
        self.total(|p| p.offered)
    }

    /// Total admitted ops across phases.
    pub fn admitted(&self) -> u64 {
        self.total(|p| p.admitted)
    }

    /// Total completed ops across phases.
    pub fn completed(&self) -> u64 {
        self.total(|p| p.completed)
    }

    /// Total sheds across phases.
    pub fn shed(&self) -> u64 {
        self.total(|p| p.shed())
    }

    /// Total typed-fault failures across phases.
    pub fn failed(&self) -> u64 {
        self.total(|p| p.failed)
    }

    /// The phase rows plus the op-stream digest: everything that must be
    /// byte-identical between a run with no admission controller and a
    /// run with a controller that never sheds.
    pub fn stream_signature(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "phase      offered  admitted  shed%     offer/s      good/s    p50us    p99us   p999us  recovery"
        );
        for p in &self.phases {
            let _ = writeln!(s, "{}", p.row());
        }
        let _ = writeln!(
            s,
            "totals: offered {} admitted {} completed {} failed {} shed {}",
            self.offered(),
            self.admitted(),
            self.completed(),
            self.failed(),
            self.shed()
        );
        let _ = writeln!(s, "ops digest {:#018x}", self.ops_digest);
        s
    }

    /// The full human-readable report; a pure function of the spec and
    /// seed, so two same-seed runs render byte-identical text.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "=== smart-serve report (seed {}) ===", self.seed);
        let _ = writeln!(
            s,
            "clients {} (distinct served {}, max session ops {}), workers {} x {}",
            self.clients,
            self.distinct_served,
            self.max_session_ops,
            self.workers.0,
            self.workers.1
        );
        let _ = writeln!(s, "admission: {}", self.admission_desc);
        let _ = writeln!(
            s,
            "membership: {} scripted window(s), final epoch {}, queue high-water {}",
            self.membership_windows, self.final_epoch, self.queue_high_water
        );
        s.push_str(&self.stream_signature());
        let _ = writeln!(
            s,
            "faults: injected {} seen {} recovered {} (recovery p50 {:.1}us p99 {:.1}us over {})",
            self.faults_injected,
            self.faults_seen,
            self.faults_recovered,
            self.recovery.quantile(0.50) as f64 / 1_000.0,
            self.recovery.quantile(0.99) as f64 / 1_000.0,
            self.recovery.count()
        );
        if self.conservation.is_empty() {
            let _ = writeln!(s, "audits: OK (balance ledger + credit conservation)");
        } else {
            for v in &self.conservation {
                let _ = writeln!(s, "audit-violation: {v}");
            }
        }
        s
    }
}

/// Order-sensitive FNV-1a fold used for the admitted-op digest.
pub fn digest_fold(digest: u64, word: u64) -> u64 {
    let mut d = digest;
    for b in word.to_le_bytes() {
        d ^= b as u64;
        d = d.wrapping_mul(0x0000_0100_0000_01b3);
    }
    d
}

/// FNV-1a offset basis: the digest's initial value.
pub const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive() {
        let a = digest_fold(digest_fold(DIGEST_SEED, 1), 2);
        let b = digest_fold(digest_fold(DIGEST_SEED, 2), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn render_is_stable_for_identical_data() {
        let mk = || {
            let mut p = PhaseStats {
                name: "steady",
                dur_ns: 1_000_000,
                offered: 100,
                admitted: 90,
                completed: 88,
                failed: 2,
                shed_throttled: 7,
                shed_queue: 3,
                ..Default::default()
            };
            for v in 1..=88u64 {
                p.latency.record(v * 100);
            }
            ServeReport {
                seed: 9,
                clients: 1000,
                phases: vec![p],
                ops_digest: 0xdead_beef,
                admission_desc: "rate 1000/s burst 10 queue 64".into(),
                ..Default::default()
            }
        };
        assert_eq!(mk().render(), mk().render());
        assert!(mk().render().contains("ops digest"));
        assert_eq!(mk().shed(), 10);
        assert_eq!(mk().offered(), 100);
    }
}
