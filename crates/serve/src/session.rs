//! The session pool: many logical clients, few physical coroutines.
//!
//! A serving deployment doesn't give a million clients a million
//! coroutines; it multiplexes them onto a bounded worker pool and lets a
//! queue absorb the mismatch. [`SessionPool`] is that mapping: admitted
//! requests enter a bounded [`WorkQueue`], `threads × depth` SMART
//! coroutines drain it in arrival order, and per-client session slots
//! (one `u32` each, so 100k+ clients stay cheap) accumulate completion
//! counts for the coverage numbers in the report.

use std::cell::{Cell, RefCell};

use smart_rt::sync::WorkQueue;
use smart_rt::Duration;

use crate::arrival::ServeOp;

/// A request in flight between admission and a worker coroutine.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// Arrival offset from simulation start (latency baseline).
    pub at: Duration,
    /// Logical client issuing the request.
    pub client: u64,
    /// Phase index the arrival fell into.
    pub phase: usize,
    /// The operation to execute.
    pub op: ServeOp,
}

/// Session state for the whole logical-client population.
pub struct SessionPool {
    queue: WorkQueue<Request>,
    ops_done: RefCell<Vec<u32>>,
    distinct: Cell<u64>,
}

impl SessionPool {
    /// A pool for `clients` logical clients whose backlog is capped at
    /// `queue_capacity` pending requests.
    pub fn new(clients: usize, queue_capacity: usize) -> SessionPool {
        SessionPool {
            queue: WorkQueue::bounded(queue_capacity),
            ops_done: RefCell::new(vec![0u32; clients]),
            distinct: Cell::new(0),
        }
    }

    /// The shared request queue (clone handles into worker coroutines).
    pub fn queue(&self) -> &WorkQueue<Request> {
        &self.queue
    }

    /// Number of logical client sessions.
    pub fn clients(&self) -> usize {
        self.ops_done.borrow().len()
    }

    /// Records a completed request for `client`'s session.
    pub fn complete(&self, client: u64) {
        let mut done = self.ops_done.borrow_mut();
        let slot = &mut done[client as usize];
        if *slot == 0 {
            self.distinct.set(self.distinct.get() + 1);
        }
        *slot = slot.saturating_add(1);
    }

    /// How many distinct clients have completed at least one request.
    pub fn distinct_served(&self) -> u64 {
        self.distinct.get()
    }

    /// The busiest single session's completion count.
    pub fn max_session_ops(&self) -> u32 {
        self.ops_done.borrow().iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_distinct_sessions_and_session_depth() {
        let pool = SessionPool::new(5, 16);
        assert_eq!(pool.clients(), 5);
        for c in [0u64, 1, 1, 4, 1] {
            pool.complete(c);
        }
        assert_eq!(pool.distinct_served(), 3);
        assert_eq!(pool.max_session_ops(), 3);
    }
}
