//! Domain-decomposed serve runner: memory blades as real PDES engine
//! domains.
//!
//! [`run_serve_decomposed`] is the serving-layer twin of
//! `smart_bench::run_ht_decomposed`: the compute node, arrival engine,
//! admission controller, session pool and all worker coroutines live in
//! domain 0 (a local domain on the coordinator thread); each blade
//! domain of the [`DomainPlan`] runs its blades behind
//! [`spawn_blade_engine`], reachable only through typed
//! request/completion envelopes whose channel latency is the fabric
//! one-way delay.
//!
//! Every domain replays the same deterministic bootstrap (cluster
//! build, slab carve, balance seeding use only the bump allocator and
//! direct writes), so each blade domain's own blades are authoritative
//! without shipping state. The membership script's fault plan (plus
//! chaos) is installed in full on domain 0 — post-side draws and the
//! shadow crash timeline that drives `MrRevoked` epochs — and lowered
//! onto the blade domains so the authoritative blades crash and rejoin
//! on the same schedule.
//!
//! The balance-conservation audit is split across the partition: domain
//! 0 sums only the blades it owns, every blade domain's finish artifact
//! carries `sum=` lines for its own slabs, and the runner combines the
//! two against `accounts × initial_balance + ledger`.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use smart::{ShardRouter, SmartConfig, SmartContext, SmartThread};
use smart_fault::FaultInjector;
use smart_rnic::{
    blade_link, spawn_blade_engine, BladeConfig, BladeId, Cluster, ClusterConfig, DomainPlan,
    NodeId, RemotePort,
};
use smart_rt::pdes::{DomainCtx, DomainId, PdesBuilder};
use smart_rt::Duration;
use smart_trace::{Actor, Args, Category, LogHistogram, TraceSink};

use crate::admission::{AdmissionController, Rejected};
use crate::arrival::ArrivalEngine;
use crate::engine::{describe_admission, execute, op_word, Accum, Slabs};
use crate::report::{digest_fold, ServeReport};
use crate::session::{Request, SessionPool};
use crate::ServeSpec;

/// Ring capacity for decomposed trace sinks, matching the equivalence
/// goldens in `tests/scheduler_equiv.rs`.
pub const DECOMPOSED_TRACE_EVENTS: usize = 1024;

/// Outcome of a [`run_serve_decomposed`] run: the classic report plus
/// the engine's partition counters. Everything except
/// `report.sim_events` is independent of the engine worker count.
#[derive(Clone, Debug)]
pub struct DecomposedServe {
    /// The serve report. `sim_events` sums scheduling events over *all*
    /// domains (excluded from equivalence fingerprints, like the hosted
    /// runners' count).
    pub report: ServeReport,
    /// Chrome trace JSON from the serve domain, when requested.
    pub trace: Option<String>,
    /// Scheduling domains in the plan (1 serve + blade domains).
    pub domains: u32,
    /// Conservative epochs the engine executed.
    pub epochs: u64,
    /// Envelopes routed across domains, requests and replies combined.
    pub envelopes: u64,
    /// Request envelopes delivered into blade domains. In a fault-free
    /// run this equals `cross_domain_wrs`.
    pub blade_requests: u64,
    /// Work requests the compute side counted as crossing the partition
    /// (diagnostics-only, never part of golden-visible output).
    pub cross_domain_wrs: u64,
    /// Concatenated blade-domain artifacts: per-blade
    /// `sum`/`served`/`epoch` lines from the authoritative blades.
    pub blade_log: String,
}

/// Runs a serve scenario decomposed over `plan`, executable by up to
/// `engine_workers` OS threads. `spec.workers` is ignored — the
/// partition comes from `plan`, and the engine worker count from
/// `engine_workers`.
///
/// The result is byte-identical for every `engine_workers` value — the
/// PDES determinism contract — but *not* byte-comparable to
/// [`crate::run_serve`]'s shared-graph timing (see
/// [`smart_rnic::engine`]).
///
/// # Panics
///
/// Panics if `spec.trace` is set (pass `with_trace` instead), if the
/// plan is single-domain or hosts the compute node outside domain 0, or
/// if the plan does not cover the cluster shape.
pub fn run_serve_decomposed(
    spec: &ServeSpec,
    plan: &DomainPlan,
    engine_workers: usize,
    with_trace: bool,
) -> DecomposedServe {
    assert!(
        spec.trace.is_none(),
        "decomposed runs own their trace sink; leave spec.trace empty and pass with_trace"
    );
    assert!(
        !plan.is_single(),
        "decomposed runner needs a partition with at least one blade domain"
    );
    assert_eq!(
        plan.node_domain(NodeId(0)),
        DomainId(0),
        "the compute node must live in domain 0"
    );

    let cells = spec.accounts.div_ceil(spec.shards as u64) * 8;
    let region = (spec.shards as u64 * cells) + (1 << 20);
    let cfg = ClusterConfig {
        compute_nodes: 1,
        memory_blades: spec.blades,
        blade: BladeConfig {
            region_bytes: region,
            ..Default::default()
        },
        ..Default::default()
    };
    let fabric = cfg.fabric.clone();

    let mut b = PdesBuilder::new(spec.seed);
    // Channel pairs for every crossing blade; a blade co-located in
    // domain 0 keeps the classic same-domain path (no port attached).
    let mut req_ends = Vec::new();
    let mut blade_ends: Vec<Vec<_>> = (0..plan.domains()).map(|_| Vec::new()).collect();
    for i in 0..spec.blades {
        let d = plan.blade_domain(BladeId(i as u32));
        if d == DomainId(0) {
            continue;
        }
        let link = blade_link(&mut b, DomainId(0), d, &fabric);
        req_ends.push((i, link.req_tx, link.rep_rx));
        blade_ends[d.index()].push((i, link.req_rx, link.rep_tx));
    }

    // (report, trace, cross_domain_wrs, domain-0 slab sum, expected total)
    type ServeOut = (ServeReport, Option<String>, u64, u64, u64);
    let out: Rc<RefCell<Option<ServeOut>>> = Rc::new(RefCell::new(None));
    let out0 = Rc::clone(&out);
    let (spec0, cfg0, plan0) = (spec.clone(), cfg.clone(), plan.clone());
    b.add_local_domain("serve", move |ctx: &DomainCtx| {
        let h = ctx.handle();
        let sink = with_trace.then(|| TraceSink::with_capacity(DECOMPOSED_TRACE_EVENTS));
        if let Some(s) = &sink {
            h.install_tracer(s.clone());
        }
        let cluster = Cluster::new_with_plan(h.clone(), cfg0, plan0.clone());
        for (i, tx, rx) in req_ends {
            let port = RemotePort::install(&h, ctx.bind_tx(tx), ctx.bind_rx(rx));
            cluster.blade(i).attach_remote(port);
        }
        let fault_plan = spec0.membership.fault_plan().merge(&spec0.chaos);
        let injector = FaultInjector::install(&cluster, fault_plan);

        let router = Rc::new(ShardRouter::new(spec0.blades, spec0.shards));
        let slabs = Rc::new(Slabs::carve(cluster.blades(), spec0.shards, spec0.accounts));
        for account in 0..spec0.accounts {
            let home = router.home(slabs.shard_of(account));
            cluster.blades()[home].write_u64(slabs.cell(account, home), spec0.initial_balance);
        }

        let accum = Rc::new(Accum::new(&spec0.plan));
        let queue_cap = spec0.admission.as_ref().map_or(usize::MAX, |c| c.max_queue);
        let pool = Rc::new(SessionPool::new(spec0.clients, queue_cap));

        // Worker coroutines: the bounded execution side of the session
        // pool, identical to the inline engine's.
        let mut smart_cfg = SmartConfig::smart_full(spec0.threads);
        smart_cfg.expected_threads = spec0.threads;
        smart_cfg.coroutines_per_thread = spec0.depth;
        let sctx = SmartContext::new(cluster.compute(0), cluster.blades(), smart_cfg);
        let mut threads: Vec<Rc<SmartThread>> = Vec::new();
        let mut workers = Vec::new();
        for _ in 0..spec0.threads {
            let thread = sctx.create_thread();
            for _ in 0..spec0.depth {
                let coro = thread.coroutine();
                let queue = pool.queue().clone();
                let (pool, accum) = (Rc::clone(&pool), Rc::clone(&accum));
                let (router, slabs) = (Rc::clone(&router), Rc::clone(&slabs));
                let blades = cluster.blades().to_vec();
                let handle = h.clone();
                workers.push(h.spawn(async move {
                    while let Some(req) = queue.recv().await {
                        let outcome = execute(&coro, &req, &slabs, &router, &blades).await;
                        let mut phases = accum.phases.borrow_mut();
                        let ph = &mut phases[req.phase];
                        match outcome {
                            Ok(delta) => {
                                accum.ledger.set(accum.ledger.get().wrapping_add(delta));
                                ph.completed += 1;
                                let lat = handle.now().as_nanos() - req.at.as_nanos() as u64;
                                ph.latency.record(lat);
                                drop(phases);
                                pool.complete(req.client);
                            }
                            Err(_) => ph.failed += 1,
                        }
                    }
                }));
            }
            threads.push(thread);
        }
        let workers = Rc::new(workers);

        // Membership driver.
        h.spawn(
            spec0
                .membership
                .clone()
                .drive(h.clone(), Rc::clone(&router)),
        );

        // Phase clerk: marks transitions and snapshots the merged
        // recovery histogram at every phase boundary.
        let snaps: Rc<RefCell<Vec<LogHistogram>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let handle = h.clone();
            let threads = threads.clone();
            let snaps = Rc::clone(&snaps);
            let plan = spec0.plan.clone();
            h.spawn(async move {
                let start = handle.now();
                let mut at = Duration::ZERO;
                for (i, p) in plan.phases().iter().enumerate() {
                    handle.with_tracer(|sink| {
                        sink.instant(
                            handle.now().as_nanos(),
                            Actor::SYSTEM,
                            Category::Serve,
                            "phase_start",
                            Args::one("phase", i as u64),
                        );
                    });
                    at += p.dur;
                    handle.sleep_until(start + at).await;
                    let mut merged = LogHistogram::new();
                    for t in &threads {
                        merged.merge(&t.stats().recovery_ns.borrow());
                    }
                    snaps.borrow_mut().push(merged);
                }
            });
        }

        // Dispatcher: the open-loop arrival source plus admission
        // decisions; closes the queue when the schedule ends so the
        // workers drain and exit on their own.
        let controller = spec0.admission.as_ref().map(AdmissionController::new);
        {
            let mut engine = ArrivalEngine::new(
                spec0.seed,
                spec0.plan.clone(),
                spec0.clients as u64,
                spec0.accounts,
                spec0.theta,
                spec0.probe_pct,
            );
            let queue = pool.queue().clone();
            let accum = Rc::clone(&accum);
            let handle = h.clone();
            h.spawn(async move {
                let start = handle.now();
                while let Some(a) = engine.next_arrival() {
                    handle.sleep_until(start + a.at).await;
                    let decision = match &controller {
                        Some(c) => c.admit(handle.now(), queue.len()),
                        None => Ok(()),
                    };
                    let mut phases = accum.phases.borrow_mut();
                    let ph = &mut phases[a.phase];
                    ph.offered += 1;
                    match decision {
                        Ok(()) => {
                            let req = Request {
                                at: a.at,
                                client: a.client,
                                phase: a.phase,
                                op: a.op,
                            };
                            match queue.try_push(req) {
                                Ok(()) => {
                                    ph.admitted += 1;
                                    drop(phases);
                                    let mut d = accum.digest.get();
                                    d = digest_fold(d, a.at.as_nanos() as u64);
                                    d = digest_fold(d, a.client);
                                    d = digest_fold(d, op_word(&a.op));
                                    accum.digest.set(d);
                                }
                                Err(_) => ph.shed_queue += 1,
                            }
                        }
                        Err(why) => {
                            match why {
                                Rejected::Throttled => ph.shed_throttled += 1,
                                Rejected::QueueFull => ph.shed_queue += 1,
                            }
                            drop(phases);
                            handle.with_tracer(|sink| {
                                sink.instant(
                                    handle.now().as_nanos(),
                                    Actor::SYSTEM,
                                    Category::Serve,
                                    "shed",
                                    Args::two("phase", a.phase as u64, "why", why as u64),
                                );
                            });
                        }
                    }
                }
                queue.close();
            });
        }

        // Watcher: the decomposed stand-in for the inline engine's
        // `run_for` + drain-slice schedule. It waits out the plan, polls
        // the drain budget in 1 ms slices, then quiesces the controller
        // coroutines so the engine can run to quiescence — in-flight
        // recoveries finish on their own.
        let stranded = Rc::new(Cell::new(0usize));
        {
            let hh = h.clone();
            let workers = Rc::clone(&workers);
            let stranded = Rc::clone(&stranded);
            let sctx = Rc::clone(&sctx);
            let total = spec0.plan.total();
            let drain = spec0.drain;
            h.spawn(async move {
                let start = hh.now();
                hh.sleep_until(start + total).await;
                let slice = Duration::from_millis(1);
                let mut drained = Duration::ZERO;
                while workers.iter().any(|w| !w.is_finished()) && drained < drain {
                    hh.sleep(slice).await;
                    drained += slice;
                }
                stranded.set(workers.iter().filter(|w| !w.is_finished()).count());
                sctx.quiesce_controllers();
            });
        }

        Box::new(move |_: &DomainCtx| {
            // Audits. Domain 0 sums only the blades it owns: every other
            // blade's authoritative bytes live in its own domain, whose
            // finish artifact carries the sum.
            let mut conservation = Vec::new();
            if stranded.get() > 0 {
                conservation.push(format!(
                    "{} worker coroutine(s) still stranded after the {}ms drain budget",
                    stranded.get(),
                    spec0.drain.as_millis()
                ));
            }
            for t in &threads {
                conservation.extend(t.throttle().conservation_violations());
            }
            let mut local_sum: u64 = 0;
            for shard in 0..spec0.shards {
                for (bi, blade) in cluster.blades().iter().enumerate() {
                    if plan0.blade_domain(BladeId(bi as u32)) != DomainId(0) {
                        continue;
                    }
                    for cell in 0..slabs.cells_per_shard {
                        local_sum = local_sum
                            .wrapping_add(blade.read_u64(slabs.bases[shard][bi] + cell * 8));
                    }
                }
            }
            let expected = spec0
                .accounts
                .wrapping_mul(spec0.initial_balance)
                .wrapping_add(accum.ledger.get());

            // Per-phase recovery CDFs from the clerk's boundary snapshots.
            let mut whole_recovery = LogHistogram::new();
            for t in &threads {
                whole_recovery.merge(&t.stats().recovery_ns.borrow());
            }
            {
                let snaps = snaps.borrow();
                let mut phases = accum.phases.borrow_mut();
                let empty = LogHistogram::new();
                for (i, ph) in phases.iter_mut().enumerate() {
                    let at_end = snaps.get(i);
                    let at_start = if i == 0 {
                        Some(&empty)
                    } else {
                        snaps.get(i - 1)
                    };
                    if let (Some(end), Some(start)) = (at_end, at_start) {
                        ph.recovery = end.diff(start);
                    }
                }
                if let (Some(last_snap), Some(last_phase)) = (snaps.last(), phases.last_mut()) {
                    let tail = whole_recovery.diff(last_snap);
                    if tail.count() > 0 {
                        last_phase.recovery.merge(&tail);
                    }
                }
            }

            let (mut seen, mut recovered) = (0u64, 0u64);
            for t in &threads {
                seen += t.stats().faults_seen.get();
                recovered += t.stats().faults_recovered.get();
            }

            let phases = accum.phases.borrow().to_vec();
            let report = ServeReport {
                seed: spec0.seed,
                clients: spec0.clients as u64,
                distinct_served: pool.distinct_served(),
                max_session_ops: pool.max_session_ops(),
                workers: (spec0.threads, spec0.depth),
                admission_desc: describe_admission(&spec0.admission),
                membership_windows: spec0.membership.events().len(),
                final_epoch: router.epoch(),
                queue_high_water: pool.queue().high_water(),
                phases,
                ops_digest: accum.digest.get(),
                faults_injected: injector.stats().total_injected(),
                faults_seen: seen,
                faults_recovered: recovered,
                recovery: whole_recovery,
                conservation,
                sim_events: 0, // filled by the runner from the engine report
            };
            let artifact = format!(
                "digest={:016x} served={} epoch={}",
                report.ops_digest, report.distinct_served, report.final_epoch
            )
            .into_bytes();
            *out0.borrow_mut() = Some((
                report,
                sink.map(|s| s.chrome_json()),
                cluster.cross_domain_wrs(),
                local_sum,
                expected,
            ));
            artifact
        })
    });

    for d in 1..plan.domains() {
        let ends = std::mem::take(&mut blade_ends[d as usize]);
        let owned: Vec<usize> = ends.iter().map(|(i, _, _)| *i).collect();
        let (cfg1, plan1) = (cfg.clone(), plan.clone());
        let (nblades, shards, accounts, initial) = (
            spec.blades,
            spec.shards,
            spec.accounts,
            spec.initial_balance,
        );
        let sub = spec
            .membership
            .fault_plan()
            .merge(&spec.chaos)
            .lower_onto(plan)[d as usize]
            .1
            .clone();
        b.add_domain(&format!("blades-{owned:?}"), move |ctx: &DomainCtx| {
            let h = ctx.handle();
            let cluster = Cluster::new_with_plan(h.clone(), cfg1, plan1);
            // Replicated deterministic bootstrap: the same slab carve and
            // balance seeding as domain 0, so this domain's own blades
            // hold authoritative cells and the rest are inert shadows.
            let router = ShardRouter::new(nblades, shards);
            let slabs = Slabs::carve(cluster.blades(), shards, accounts);
            for account in 0..accounts {
                let home = router.home(slabs.shard_of(account));
                cluster.blades()[home].write_u64(slabs.cell(account, home), initial);
            }
            if !sub.events().is_empty() {
                // Only the scheduled crash/restart timeline matters here
                // — nothing posts in this domain, so the hook's
                // probabilistic draws never fire (the driver task keeps
                // its own reference to the injector).
                let _ = FaultInjector::install(&cluster, sub);
            }
            let rnic = cluster.config().rnic.clone();
            let fab = cluster.config().fabric.clone();
            let mut blades = Vec::new();
            for (i, rx, tx) in ends {
                let blade = Rc::clone(cluster.blade(i));
                spawn_blade_engine(&blade, &rnic, &fab, ctx.bind_rx(rx), ctx.bind_tx(tx));
                blades.push((i, blade));
            }
            Box::new(move |_: &DomainCtx| {
                let mut s = String::new();
                for (i, blade) in &blades {
                    let mut sum: u64 = 0;
                    for shard in 0..shards {
                        for cell in 0..slabs.cells_per_shard {
                            sum =
                                sum.wrapping_add(blade.read_u64(slabs.bases[shard][*i] + cell * 8));
                        }
                    }
                    s.push_str(&format!(
                        "blade{} sum={} served={} epoch={}\n",
                        i,
                        sum,
                        blade.ops_served(),
                        blade.epoch()
                    ));
                }
                s.into_bytes()
            })
        });
    }

    let engine = b.run(engine_workers);
    let (mut report, trace, cross_domain_wrs, local_sum, expected) =
        out.borrow_mut().take().expect("serve domain must finish");
    report.sim_events = engine.events();
    let blade_requests: u64 = engine.domains[1..].iter().map(|d| d.delivered).sum();
    let blade_log: String = engine.domains[1..]
        .iter()
        .map(|d| String::from_utf8_lossy(&d.artifact).into_owned())
        .collect();
    // Combine the split balance audit: domain 0's local sum plus every
    // blade domain's authoritative slab sums.
    let mut total = local_sum;
    for line in blade_log.lines() {
        if let Some(v) = line.split_whitespace().find_map(|w| w.strip_prefix("sum=")) {
            total = total.wrapping_add(v.parse::<u64>().expect("blade artifact sum"));
        }
    }
    if total != expected {
        report.conservation.push(format!(
            "balance ledger mismatch: blades hold {total}, ledger expects {expected}"
        ));
    }
    DecomposedServe {
        report,
        trace,
        domains: plan.domains(),
        epochs: engine.epochs,
        envelopes: engine.envelopes,
        blade_requests,
        cross_domain_wrs,
        blade_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::RatePlan;
    use crate::membership::MembershipPlan;

    fn small_spec() -> ServeSpec {
        let plan = RatePlan::new()
            .phase("ramp", Duration::from_millis(2), 0.0, 60_000.0)
            .phase("peak", Duration::from_millis(2), 120_000.0, 120_000.0);
        let mut spec = ServeSpec::new(11, 400, plan);
        spec.threads = 2;
        spec.depth = 4;
        spec.blades = 3;
        spec.shards = 6;
        spec.accounts = 256;
        spec.drain = Duration::from_millis(20);
        spec
    }

    #[test]
    fn decomposed_serve_is_worker_invariant_and_conserves_balances() {
        let spec = small_spec();
        let plan = DomainPlan::per_blade(1, spec.blades as u32);
        let seq = run_serve_decomposed(&spec, &plan, 1, false);
        let par = run_serve_decomposed(&spec, &plan, 3, false);
        assert_eq!(format!("{:?}", seq.report), format!("{:?}", par.report));
        assert_eq!(seq.blade_log, par.blade_log);
        assert_eq!(seq.epochs, par.epochs);
        assert_eq!(seq.envelopes, par.envelopes);
        let completed: u64 = seq.report.phases.iter().map(|p| p.completed).sum();
        assert!(completed > 0, "no requests completed through blade domains");
        assert!(
            seq.report.conservation.is_empty(),
            "audit failures: {:?}",
            seq.report.conservation
        );
        assert_eq!(seq.envelopes, 2 * seq.blade_requests);
    }

    #[test]
    fn decomposed_serve_survives_membership_churn() {
        let mut spec = small_spec();
        spec.membership =
            MembershipPlan::new().leave_at(Duration::from_millis(1), 1, Duration::from_millis(1));
        let plan = DomainPlan::for_workers(2, 1, spec.blades as u32);
        let seq = run_serve_decomposed(&spec, &plan, 1, false);
        let par = run_serve_decomposed(&spec, &plan, 2, false);
        assert_eq!(format!("{:?}", seq.report), format!("{:?}", par.report));
        assert!(
            seq.report.faults_injected > 0,
            "membership crash not lowered"
        );
        assert_eq!(
            seq.report.final_epoch, 2,
            "leave + join flips the epoch twice"
        );
    }
}
