//! Property-based tests for the workload generators.

use proptest::prelude::*;
use smart_rt::rng::SimRng;
use smart_rt::Duration;
use smart_workloads::latency::LatencyRecorder;
use smart_workloads::smallbank::SmallBankGenerator;
use smart_workloads::tatp::TatpGenerator;
use smart_workloads::ycsb::{Mix, YcsbGenerator};
use smart_workloads::zipf::Zipfian;

proptest! {
    #[test]
    fn zipf_ranks_always_in_range(
        n in 1u64..100_000,
        theta in 0.0f64..0.999,
        seed in any::<u64>(),
    ) {
        let mut z = Zipfian::new(n, theta);
        let mut rng = SimRng::new(seed);
        for _ in 0..200 {
            prop_assert!(z.next(&mut rng) < n);
        }
    }

    #[test]
    fn latency_percentiles_are_monotone(
        samples in prop::collection::vec(1u64..10_000_000_000, 1..200),
        quantiles in prop::collection::vec(0.0f64..=1.0, 2..6),
    ) {
        let mut rec = LatencyRecorder::new();
        for &ns in &samples {
            rec.record(Duration::from_nanos(ns));
        }
        let mut qs = quantiles;
        qs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let mut prev = Duration::ZERO;
        for q in qs {
            let v = rec.percentile(q);
            prop_assert!(v >= prev, "percentile({q}) = {v:?} < {prev:?}");
            prev = v;
        }
        prop_assert!(rec.percentile(1.0) >= Duration::from_nanos(*samples.iter().max().expect("nonempty") * 98 / 100));
    }

    #[test]
    fn latency_percentile_error_is_bounded(ns in 64u64..10_000_000_000) {
        let mut rec = LatencyRecorder::new();
        rec.record(Duration::from_nanos(ns));
        let got = rec.percentile(0.5).as_nanos() as f64;
        let err = (got - ns as f64).abs() / ns as f64;
        prop_assert!(err <= 0.02, "ns {ns} -> {got}, err {err}");
    }

    #[test]
    fn merged_recorder_counts_add_up(
        a in prop::collection::vec(1u64..1_000_000, 0..100),
        b in prop::collection::vec(1u64..1_000_000, 0..100),
    ) {
        let mut ra = LatencyRecorder::new();
        let mut rb = LatencyRecorder::new();
        for &x in &a { ra.record(Duration::from_nanos(x)); }
        for &x in &b { rb.record(Duration::from_nanos(x)); }
        let (ca, cb) = (ra.count(), rb.count());
        ra.merge(&rb);
        prop_assert_eq!(ra.count(), ca + cb);
    }

    #[test]
    fn ycsb_streams_are_deterministic_and_in_range(
        n in 1u64..1_000_000,
        seed in any::<u64>(),
        frac in 0.0f64..=1.0,
    ) {
        let mut g1 = YcsbGenerator::new(n, 0.99, Mix::Custom(frac), seed);
        let mut g2 = YcsbGenerator::new(n, 0.99, Mix::Custom(frac), seed);
        for _ in 0..100 {
            let (a, b) = (g1.next_op(), g2.next_op());
            prop_assert_eq!(a, b);
            prop_assert!(a.key() < n);
        }
    }

    #[test]
    fn smallbank_accounts_in_range(accounts in 2u64..1_000_000, seed in any::<u64>()) {
        let mut g = SmallBankGenerator::new(accounts, seed);
        for _ in 0..100 {
            for a in g.next_txn().accounts() {
                prop_assert!(a < accounts);
            }
        }
    }

    #[test]
    fn tatp_sids_in_range(subs in 1u64..2_000_000, seed in any::<u64>()) {
        let mut g = TatpGenerator::new(subs, seed);
        for _ in 0..100 {
            prop_assert!(g.next_txn().sid() < subs);
        }
    }
}
