//! Randomized (seeded, deterministic) tests for the workload generators;
//! the offline replacement for the earlier proptest suite.

use smart_rt::rng::SimRng;
use smart_rt::Duration;
use smart_workloads::latency::LatencyRecorder;
use smart_workloads::smallbank::SmallBankGenerator;
use smart_workloads::tatp::TatpGenerator;
use smart_workloads::ycsb::{Mix, YcsbGenerator};
use smart_workloads::zipf::Zipfian;

#[test]
fn zipf_ranks_always_in_range() {
    let mut case_rng = SimRng::new(0x21FF);
    for _ in 0..24 {
        let n = case_rng.gen_range(1, 100_000);
        let theta = case_rng.next_f64() * 0.999;
        let seed = case_rng.next_u64();
        let mut z = Zipfian::new(n, theta);
        let mut rng = SimRng::new(seed);
        for _ in 0..200 {
            assert!(z.next(&mut rng) < n);
        }
    }
}

#[test]
fn latency_percentiles_are_monotone() {
    let mut rng = SimRng::new(0x1A7);
    for _ in 0..24 {
        let samples: Vec<u64> = {
            let n = rng.gen_range(1, 200);
            (0..n).map(|_| rng.gen_range(1, 10_000_000_000)).collect()
        };
        let mut rec = LatencyRecorder::new();
        for &ns in &samples {
            rec.record(Duration::from_nanos(ns));
        }
        let mut qs: Vec<f64> = {
            let n = rng.gen_range(2, 6);
            (0..n).map(|_| rng.next_f64()).collect()
        };
        qs.push(1.0);
        qs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let mut prev = Duration::ZERO;
        for q in qs {
            let v = rec.percentile(q);
            assert!(v >= prev, "percentile({q}) = {v:?} < {prev:?}");
            prev = v;
        }
        assert!(
            rec.percentile(1.0)
                >= Duration::from_nanos(*samples.iter().max().expect("nonempty") * 98 / 100)
        );
    }
}

#[test]
fn latency_percentile_error_is_bounded() {
    let mut rng = SimRng::new(0xE44);
    for _ in 0..256 {
        let ns = rng.gen_range(64, 10_000_000_000);
        let mut rec = LatencyRecorder::new();
        rec.record(Duration::from_nanos(ns));
        let got = rec.percentile(0.5).as_nanos() as f64;
        let err = (got - ns as f64).abs() / ns as f64;
        assert!(err <= 0.02, "ns {ns} -> {got}, err {err}");
    }
}

#[test]
fn merged_recorder_counts_add_up() {
    let mut rng = SimRng::new(0x3E46E);
    for _ in 0..32 {
        let a: Vec<u64> = (0..rng.next_u64_below(100))
            .map(|_| rng.gen_range(1, 1_000_000))
            .collect();
        let b: Vec<u64> = (0..rng.next_u64_below(100))
            .map(|_| rng.gen_range(1, 1_000_000))
            .collect();
        let mut ra = LatencyRecorder::new();
        let mut rb = LatencyRecorder::new();
        for &x in &a {
            ra.record(Duration::from_nanos(x));
        }
        for &x in &b {
            rb.record(Duration::from_nanos(x));
        }
        let (ca, cb) = (ra.count(), rb.count());
        ra.merge(&rb);
        assert_eq!(ra.count(), ca + cb);
    }
}

#[test]
fn ycsb_streams_are_deterministic_and_in_range() {
    let mut case_rng = SimRng::new(0xFC5B);
    for _ in 0..24 {
        let n = case_rng.gen_range(1, 1_000_000);
        let seed = case_rng.next_u64();
        let frac = case_rng.next_f64();
        let mut g1 = YcsbGenerator::new(n, 0.99, Mix::Custom(frac), seed);
        let mut g2 = YcsbGenerator::new(n, 0.99, Mix::Custom(frac), seed);
        for _ in 0..100 {
            let (a, b) = (g1.next_op(), g2.next_op());
            assert_eq!(a, b);
            assert!(a.key() < n);
        }
    }
}

#[test]
fn smallbank_accounts_in_range() {
    let mut case_rng = SimRng::new(0x5BA4);
    for _ in 0..24 {
        let accounts = case_rng.gen_range(2, 1_000_000);
        let seed = case_rng.next_u64();
        let mut g = SmallBankGenerator::new(accounts, seed);
        for _ in 0..100 {
            for a in g.next_txn().accounts() {
                assert!(a < accounts);
            }
        }
    }
}

#[test]
fn tatp_sids_in_range() {
    let mut case_rng = SimRng::new(0x7A7);
    for _ in 0..24 {
        let subs = case_rng.gen_range(1, 2_000_000);
        let seed = case_rng.next_u64();
        let mut g = TatpGenerator::new(subs, seed);
        for _ in 0..100 {
            assert!(g.next_txn().sid() < subs);
        }
    }
}
