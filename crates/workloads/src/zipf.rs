//! Zipfian key generator (Gray et al., "Quickly generating billion-record
//! synthetic databases", SIGMOD '94) — the distribution YCSB and the SMART
//! paper use for skewed keys (θ = 0.99).

use smart_rt::rng::SimRng;

/// Draws ranks in `[0, n)` with Zipfian skew θ; rank 0 is the hottest.
///
/// With θ = 0 the distribution is uniform; θ = 0.99 is YCSB's default
/// "zipfian constant" used throughout the SMART evaluation.
///
/// ```rust
/// use smart_rt::rng::SimRng;
/// use smart_workloads::zipf::Zipfian;
///
/// let mut z = Zipfian::new(1_000, 0.99);
/// let mut rng = SimRng::new(7);
/// let rank = z.next(&mut rng);
/// assert!(rank < 1_000);
/// ```
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Exact for small n; Euler–Maclaurin style approximation beyond, which
    // keeps construction O(1)-ish for the paper's 100 M-key tables.
    const EXACT: u64 = 1_000_000;
    if n <= EXACT {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    } else {
        let head: f64 = (1..=EXACT).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        // ∫_{EXACT}^{n} x^-θ dx
        let tail =
            ((n as f64).powf(1.0 - theta) - (EXACT as f64).powf(1.0 - theta)) / (1.0 - theta);
        head + tail
    }
}

impl Zipfian {
    /// Creates a generator over `n` ranks with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `theta < 0` or `theta >= 1`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian needs a non-empty key space");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        if theta == 0.0 {
            return Zipfian {
                n,
                theta,
                alpha: 0.0,
                zetan: 0.0,
                eta: 0.0,
            };
        }
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws the next rank; rank 0 is the most popular.
    pub fn next(&mut self, rng: &mut SimRng) -> u64 {
        if self.theta == 0.0 {
            return rng.next_u64_below(self.n);
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// A scrambled Zipfian: Zipfian ranks hashed over the key space so hot
/// keys are spread out (YCSB's `ScrambledZipfianGenerator`).
#[derive(Clone, Debug)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x1_0000_01B3;

/// FNV-1a 64-bit hash of a `u64`, YCSB-style.
pub fn fnv1a_u64(mut v: u64) -> u64 {
    let mut h = FNV_OFFSET;
    for _ in 0..8 {
        h ^= v & 0xFF;
        h = h.wrapping_mul(FNV_PRIME);
        v >>= 8;
    }
    h
}

impl ScrambledZipfian {
    /// Creates a scrambled generator over `n` keys with skew `theta`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Zipfian::new`].
    pub fn new(n: u64, theta: f64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::new(n, theta),
        }
    }

    /// Number of keys.
    pub fn n(&self) -> u64 {
        self.inner.n()
    }

    /// Draws the next key in `[0, n)`.
    pub fn next(&mut self, rng: &mut SimRng) -> u64 {
        let rank = self.inner.next(rng);
        fnv1a_u64(rank) % self.inner.n()
    }

    /// The key a given rank maps to (rank 0 is the hottest key).
    pub fn key_of_rank(&self, rank: u64) -> u64 {
        fnv1a_u64(rank) % self.inner.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head_mass(theta: f64, n: u64, draws: usize, head: u64) -> f64 {
        let mut z = Zipfian::new(n, theta);
        let mut rng = SimRng::new(1);
        let mut hits = 0usize;
        for _ in 0..draws {
            if z.next(&mut rng) < head {
                hits += 1;
            }
        }
        hits as f64 / draws as f64
    }

    #[test]
    fn theta_zero_is_uniform() {
        let mass = head_mass(0.0, 10_000, 50_000, 100);
        assert!((mass - 0.01).abs() < 0.005, "head mass {mass}");
    }

    #[test]
    fn theta_099_is_heavily_skewed() {
        // With θ=0.99 the top 100 of 10k keys draw a large share.
        let mass = head_mass(0.99, 10_000, 50_000, 100);
        assert!(mass > 0.45, "head mass {mass}");
    }

    #[test]
    fn skew_increases_with_theta() {
        let m0 = head_mass(0.0, 10_000, 30_000, 10);
        let m5 = head_mass(0.5, 10_000, 30_000, 10);
        let m9 = head_mass(0.9, 10_000, 30_000, 10);
        assert!(m0 < m5 && m5 < m9, "{m0} {m5} {m9}");
    }

    #[test]
    fn ranks_stay_in_range() {
        for theta in [0.0, 0.5, 0.99] {
            let mut z = Zipfian::new(97, theta);
            let mut rng = SimRng::new(3);
            for _ in 0..10_000 {
                assert!(z.next(&mut rng) < 97);
            }
        }
    }

    #[test]
    fn rank_zero_is_most_frequent() {
        let mut z = Zipfian::new(1000, 0.99);
        let mut rng = SimRng::new(5);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.next(&mut rng) as usize] += 1;
        }
        let max = counts.iter().copied().max().expect("nonempty");
        assert_eq!(counts[0], max);
        assert!(counts[0] > counts[10] && counts[10] > counts[500]);
    }

    #[test]
    fn large_n_constructs_and_draws() {
        let mut z = Zipfian::new(100_000_000, 0.99);
        let mut rng = SimRng::new(9);
        for _ in 0..1000 {
            assert!(z.next(&mut rng) < 100_000_000);
        }
    }

    #[test]
    fn scrambled_spreads_hot_keys_but_keeps_skew() {
        let mut s = ScrambledZipfian::new(10_000, 0.99);
        let mut rng = SimRng::new(2);
        let hot = s.key_of_rank(0);
        let mut hot_hits = 0;
        for _ in 0..20_000 {
            if s.next(&mut rng) == hot {
                hot_hits += 1;
            }
        }
        // The hottest key keeps its zipfian share (~10 % for θ=.99, n=10k)...
        assert!(hot_hits > 1000, "hot hits {hot_hits}");
        // ...but is not simply key 0.
        assert_ne!(hot, 0);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_theta_one() {
        let _ = Zipfian::new(10, 1.0);
    }

    #[test]
    fn fnv_is_deterministic_and_spreading() {
        assert_eq!(fnv1a_u64(42), fnv1a_u64(42));
        assert_ne!(fnv1a_u64(1), fnv1a_u64(2));
    }
}
