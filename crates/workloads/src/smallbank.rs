//! SmallBank transaction mix (H-Store benchmark): bank accounts with
//! savings and checking balances; 85 % of transactions are read-write
//! (§6.2.2). Account selection uses a hotspot: a small fraction of
//! accounts receives most of the traffic, which is what makes FORD-style
//! systems contend.

use smart_rt::rng::SimRng;

/// The six SmallBank transaction types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SmallBankTxn {
    /// Move both balances of one account into another's checking (RW, 2 accts).
    Amalgamate {
        /// Source account.
        from: u64,
        /// Destination account.
        to: u64,
    },
    /// Read both balances of one account (read-only).
    Balance {
        /// Account to read.
        account: u64,
    },
    /// Add to an account's checking balance (RW).
    DepositChecking {
        /// Target account.
        account: u64,
        /// Amount in cents.
        amount: i64,
    },
    /// Transfer between two accounts' checking balances (RW, 2 accts).
    SendPayment {
        /// Payer.
        from: u64,
        /// Payee.
        to: u64,
        /// Amount in cents.
        amount: i64,
    },
    /// Add to an account's savings balance (RW).
    TransactSavings {
        /// Target account.
        account: u64,
        /// Amount in cents (may be negative).
        amount: i64,
    },
    /// Deduct a check from checking, possibly overdrafting (RW).
    WriteCheck {
        /// Target account.
        account: u64,
        /// Amount in cents.
        amount: i64,
    },
}

impl SmallBankTxn {
    /// Whether the transaction writes.
    pub fn is_read_write(&self) -> bool {
        !matches!(self, SmallBankTxn::Balance { .. })
    }

    /// Accounts the transaction touches.
    pub fn accounts(&self) -> Vec<u64> {
        match *self {
            SmallBankTxn::Amalgamate { from, to } | SmallBankTxn::SendPayment { from, to, .. } => {
                vec![from, to]
            }
            SmallBankTxn::Balance { account }
            | SmallBankTxn::DepositChecking { account, .. }
            | SmallBankTxn::TransactSavings { account, .. }
            | SmallBankTxn::WriteCheck { account, .. } => vec![account],
        }
    }
}

/// SmallBank transaction generator.
///
/// The standard mix: Amalgamate 15 %, Balance 15 %, DepositChecking 15 %,
/// SendPayment 25 %, TransactSavings 15 %, WriteCheck 15 % ⇒ 85 %
/// read-write, matching the paper.
#[derive(Clone, Debug)]
pub struct SmallBankGenerator {
    accounts: u64,
    hot_accounts: u64,
    hot_probability: f64,
    rng: SimRng,
}

impl SmallBankGenerator {
    /// Standard hotspot: 90 % of account picks go to the hottest 4 % of
    /// accounts (the H-Store default).
    pub fn new(accounts: u64, seed: u64) -> Self {
        Self::with_hotspot(accounts, (accounts / 25).max(1), 0.9, seed)
    }

    /// Custom hotspot shape.
    ///
    /// # Panics
    ///
    /// Panics if `accounts == 0` or `hot_accounts > accounts`.
    pub fn with_hotspot(accounts: u64, hot_accounts: u64, hot_probability: f64, seed: u64) -> Self {
        assert!(accounts > 0, "need at least one account");
        assert!(hot_accounts >= 1 && hot_accounts <= accounts);
        SmallBankGenerator {
            accounts,
            hot_accounts,
            hot_probability,
            rng: SimRng::new(seed),
        }
    }

    /// Number of accounts.
    pub fn accounts(&self) -> u64 {
        self.accounts
    }

    fn pick_account(&mut self) -> u64 {
        if self.rng.gen_bool(self.hot_probability) {
            self.rng.next_u64_below(self.hot_accounts)
        } else {
            self.rng.next_u64_below(self.accounts)
        }
    }

    fn pick_two(&mut self) -> (u64, u64) {
        let a = self.pick_account();
        loop {
            let b = self.pick_account();
            if b != a || self.accounts == 1 {
                return (a, b);
            }
        }
    }

    /// Draws the next transaction.
    pub fn next_txn(&mut self) -> SmallBankTxn {
        let dice = self.rng.next_u64_below(100);
        let amount = 1 + self.rng.next_u64_below(100) as i64;
        match dice {
            0..=14 => {
                let (from, to) = self.pick_two();
                SmallBankTxn::Amalgamate { from, to }
            }
            15..=29 => SmallBankTxn::Balance {
                account: self.pick_account(),
            },
            30..=44 => SmallBankTxn::DepositChecking {
                account: self.pick_account(),
                amount,
            },
            45..=69 => {
                let (from, to) = self.pick_two();
                SmallBankTxn::SendPayment { from, to, amount }
            }
            70..=84 => SmallBankTxn::TransactSavings {
                account: self.pick_account(),
                amount,
            },
            _ => SmallBankTxn::WriteCheck {
                account: self.pick_account(),
                amount,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_85_percent_read_write() {
        let mut g = SmallBankGenerator::new(10_000, 3);
        let n = 20_000;
        let rw = (0..n).filter(|_| g.next_txn().is_read_write()).count();
        let ratio = rw as f64 / n as f64;
        assert!((ratio - 0.85).abs() < 0.02, "RW ratio {ratio}");
    }

    #[test]
    fn accounts_stay_in_range() {
        let mut g = SmallBankGenerator::new(500, 4);
        for _ in 0..5_000 {
            for a in g.next_txn().accounts() {
                assert!(a < 500);
            }
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let mut g = SmallBankGenerator::new(10_000, 5);
        let hot_cut = 10_000 / 25;
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..10_000 {
            for a in g.next_txn().accounts() {
                total += 1;
                if a < hot_cut {
                    hot += 1;
                }
            }
        }
        let ratio = hot as f64 / total as f64;
        assert!(ratio > 0.8, "hot traffic share {ratio}");
    }

    #[test]
    fn two_account_txns_use_distinct_accounts() {
        let mut g = SmallBankGenerator::new(100, 6);
        for _ in 0..2_000 {
            match g.next_txn() {
                SmallBankTxn::Amalgamate { from, to }
                | SmallBankTxn::SendPayment { from, to, .. } => assert_ne!(from, to),
                _ => {}
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let seq = |seed| {
            let mut g = SmallBankGenerator::new(100, seed);
            (0..20).map(|_| g.next_txn()).collect::<Vec<_>>()
        };
        assert_eq!(seq(9), seq(9));
        assert_ne!(seq(9), seq(10));
    }
}
