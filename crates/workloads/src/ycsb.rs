//! YCSB-style key/value workloads with the paper's three read/write mixes
//! (§6.2.1): write-heavy (50 % updates), read-heavy (5 % updates) and
//! read-only; keys follow a scrambled Zipfian (θ = 0.99 by default).

use smart_rt::rng::SimRng;

use crate::zipf::ScrambledZipfian;

/// The three YCSB mixes the paper evaluates.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Mix {
    /// 50 % updates, 50 % lookups.
    WriteHeavy,
    /// 5 % updates, 95 % lookups.
    ReadHeavy,
    /// 100 % lookups.
    ReadOnly,
    /// 100 % updates (used by the Figure 14 conflict study).
    UpdateOnly,
    /// Custom update fraction.
    Custom(f64),
}

impl Mix {
    /// The update fraction of this mix.
    pub fn update_fraction(self) -> f64 {
        match self {
            Mix::WriteHeavy => 0.50,
            Mix::ReadHeavy => 0.05,
            Mix::ReadOnly => 0.0,
            Mix::UpdateOnly => 1.0,
            Mix::Custom(f) => f.clamp(0.0, 1.0),
        }
    }
}

/// One generated index operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum YcsbOp {
    /// Read the value of a key.
    Lookup(u64),
    /// Overwrite the value of a key.
    Update(u64),
}

impl YcsbOp {
    /// The key this operation touches.
    pub fn key(self) -> u64 {
        match self {
            YcsbOp::Lookup(k) | YcsbOp::Update(k) => k,
        }
    }

    /// Whether this is an update.
    pub fn is_update(self) -> bool {
        matches!(self, YcsbOp::Update(_))
    }
}

/// Per-client YCSB operation stream.
///
/// ```rust
/// use smart_workloads::ycsb::{Mix, YcsbGenerator};
///
/// let mut g = YcsbGenerator::new(1_000, 0.99, Mix::ReadHeavy, 42);
/// let op = g.next_op();
/// assert!(op.key() < 1_000);
/// ```
#[derive(Clone, Debug)]
pub struct YcsbGenerator {
    keys: ScrambledZipfian,
    mix: Mix,
    rng: SimRng,
}

impl YcsbGenerator {
    /// Creates a generator over `n` keys with Zipfian skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `[0, 1)`.
    pub fn new(n: u64, theta: f64, mix: Mix, seed: u64) -> Self {
        YcsbGenerator {
            keys: ScrambledZipfian::new(n, theta),
            mix,
            rng: SimRng::new(seed),
        }
    }

    /// Number of keys in the key space.
    pub fn key_space(&self) -> u64 {
        self.keys.n()
    }

    /// Derives a generator with the same key space and mix but an
    /// independent random stream — cheap (the Zipfian tables are reused),
    /// which matters when spawning hundreds of client coroutines.
    pub fn fork(&self, seed: u64) -> YcsbGenerator {
        YcsbGenerator {
            keys: self.keys.clone(),
            mix: self.mix,
            rng: SimRng::new(seed),
        }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> YcsbOp {
        let key = self.keys.next(&mut self.rng);
        if self.rng.gen_bool(self.mix.update_fraction()) {
            YcsbOp::Update(key)
        } else {
            YcsbOp::Lookup(key)
        }
    }

    /// An 8-byte value derived from `key` and a version counter — lets
    /// correctness tests verify that reads observe some legitimately
    /// written value.
    pub fn value_for(key: u64, version: u64) -> u64 {
        key.rotate_left(17) ^ version.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update_ratio(mix: Mix) -> f64 {
        let mut g = YcsbGenerator::new(10_000, 0.99, mix, 7);
        let n = 20_000;
        let updates = (0..n).filter(|_| g.next_op().is_update()).count();
        updates as f64 / n as f64
    }

    #[test]
    fn write_heavy_is_half_updates() {
        let r = update_ratio(Mix::WriteHeavy);
        assert!((r - 0.5).abs() < 0.02, "ratio {r}");
    }

    #[test]
    fn read_heavy_is_5_percent_updates() {
        let r = update_ratio(Mix::ReadHeavy);
        assert!((r - 0.05).abs() < 0.01, "ratio {r}");
    }

    #[test]
    fn read_only_never_updates() {
        assert_eq!(update_ratio(Mix::ReadOnly), 0.0);
    }

    #[test]
    fn update_only_always_updates() {
        assert_eq!(update_ratio(Mix::UpdateOnly), 1.0);
    }

    #[test]
    fn custom_mix_clamps() {
        assert_eq!(Mix::Custom(2.0).update_fraction(), 1.0);
        assert_eq!(Mix::Custom(-1.0).update_fraction(), 0.0);
        let r = update_ratio(Mix::Custom(0.25));
        assert!((r - 0.25).abs() < 0.02, "ratio {r}");
    }

    #[test]
    fn keys_stay_in_space() {
        let mut g = YcsbGenerator::new(123, 0.5, Mix::WriteHeavy, 1);
        for _ in 0..5_000 {
            assert!(g.next_op().key() < 123);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let ops = |seed| {
            let mut g = YcsbGenerator::new(100, 0.99, Mix::WriteHeavy, seed);
            (0..50).map(|_| g.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(ops(5), ops(5));
        assert_ne!(ops(5), ops(6));
    }

    #[test]
    fn value_for_varies_with_inputs() {
        assert_ne!(
            YcsbGenerator::value_for(1, 0),
            YcsbGenerator::value_for(1, 1)
        );
        assert_ne!(
            YcsbGenerator::value_for(1, 0),
            YcsbGenerator::value_for(2, 0)
        );
    }
}
