//! TATP (Telecom Application Transaction Processing) mix: 80 % read-only
//! transactions over subscriber records (§6.2.2).

use smart_rt::rng::SimRng;

/// TATP transaction types with the standard mix percentages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TatpTxn {
    /// Read a subscriber row (35 %).
    GetSubscriberData {
        /// Subscriber id.
        sid: u64,
    },
    /// Read special-facility + call-forwarding rows (10 %).
    GetNewDestination {
        /// Subscriber id.
        sid: u64,
        /// Special-facility type, 1–4.
        sf_type: u8,
    },
    /// Read an access-info row (35 %).
    GetAccessData {
        /// Subscriber id.
        sid: u64,
        /// Access-info type, 1–4.
        ai_type: u8,
    },
    /// Update subscriber bit + special-facility data (2 %).
    UpdateSubscriberData {
        /// Subscriber id.
        sid: u64,
        /// Special-facility type, 1–4.
        sf_type: u8,
        /// New bit value.
        bit: bool,
    },
    /// Update a subscriber's location (14 %).
    UpdateLocation {
        /// Subscriber id.
        sid: u64,
        /// New location value.
        location: u64,
    },
    /// Insert a call-forwarding row (2 %).
    InsertCallForwarding {
        /// Subscriber id.
        sid: u64,
        /// Special-facility type, 1–4.
        sf_type: u8,
        /// Forwarding start hour (0, 8 or 16).
        start_time: u8,
    },
    /// Delete a call-forwarding row (2 %).
    DeleteCallForwarding {
        /// Subscriber id.
        sid: u64,
        /// Special-facility type, 1–4.
        sf_type: u8,
        /// Forwarding start hour (0, 8 or 16).
        start_time: u8,
    },
}

impl TatpTxn {
    /// Whether the transaction only reads.
    pub fn is_read_only(&self) -> bool {
        matches!(
            self,
            TatpTxn::GetSubscriberData { .. }
                | TatpTxn::GetNewDestination { .. }
                | TatpTxn::GetAccessData { .. }
        )
    }

    /// The subscriber the transaction touches.
    pub fn sid(&self) -> u64 {
        match *self {
            TatpTxn::GetSubscriberData { sid }
            | TatpTxn::GetNewDestination { sid, .. }
            | TatpTxn::GetAccessData { sid, .. }
            | TatpTxn::UpdateSubscriberData { sid, .. }
            | TatpTxn::UpdateLocation { sid, .. }
            | TatpTxn::InsertCallForwarding { sid, .. }
            | TatpTxn::DeleteCallForwarding { sid, .. } => sid,
        }
    }
}

/// TATP transaction generator (non-uniform subscriber selection per the
/// TATP spec's `NURand`-like rule).
#[derive(Clone, Debug)]
pub struct TatpGenerator {
    subscribers: u64,
    a: u64,
    rng: SimRng,
}

impl TatpGenerator {
    /// Creates a generator over `subscribers` subscriber rows.
    ///
    /// # Panics
    ///
    /// Panics if `subscribers == 0`.
    pub fn new(subscribers: u64, seed: u64) -> Self {
        assert!(subscribers > 0, "need at least one subscriber");
        // TATP's non-uniform constant A depends on the population size.
        let a = if subscribers <= 1_000_000 {
            65_535
        } else {
            1_048_575
        };
        TatpGenerator {
            subscribers,
            a,
            rng: SimRng::new(seed),
        }
    }

    /// Number of subscribers.
    pub fn subscribers(&self) -> u64 {
        self.subscribers
    }

    fn pick_sid(&mut self) -> u64 {
        let a = self.a.min(self.subscribers.saturating_sub(1)).max(1);
        let x = self.rng.next_u64_below(a + 1);
        let y = self.rng.next_u64_below(self.subscribers);
        (x | y) % self.subscribers
    }

    fn sf_type(&mut self) -> u8 {
        1 + self.rng.next_u64_below(4) as u8
    }

    fn start_time(&mut self) -> u8 {
        (self.rng.next_u64_below(3) * 8) as u8
    }

    /// Draws the next transaction.
    pub fn next_txn(&mut self) -> TatpTxn {
        let dice = self.rng.next_u64_below(100);
        let sid = self.pick_sid();
        match dice {
            0..=34 => TatpTxn::GetSubscriberData { sid },
            35..=44 => TatpTxn::GetNewDestination {
                sid,
                sf_type: self.sf_type(),
            },
            45..=79 => TatpTxn::GetAccessData {
                sid,
                ai_type: self.sf_type(),
            },
            80..=81 => TatpTxn::UpdateSubscriberData {
                sid,
                sf_type: self.sf_type(),
                bit: self.rng.gen_bool(0.5),
            },
            82..=95 => TatpTxn::UpdateLocation {
                sid,
                location: self.rng.next_u64(),
            },
            96..=97 => TatpTxn::InsertCallForwarding {
                sid,
                sf_type: self.sf_type(),
                start_time: self.start_time(),
            },
            _ => TatpTxn::DeleteCallForwarding {
                sid,
                sf_type: self.sf_type(),
                start_time: self.start_time(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_80_percent_read_only() {
        let mut g = TatpGenerator::new(100_000, 11);
        let n = 20_000;
        let ro = (0..n).filter(|_| g.next_txn().is_read_only()).count();
        let ratio = ro as f64 / n as f64;
        assert!((ratio - 0.80).abs() < 0.02, "read-only ratio {ratio}");
    }

    #[test]
    fn sids_stay_in_range() {
        let mut g = TatpGenerator::new(777, 12);
        for _ in 0..5_000 {
            assert!(g.next_txn().sid() < 777);
        }
    }

    #[test]
    fn sf_types_and_start_times_are_valid() {
        let mut g = TatpGenerator::new(1000, 13);
        for _ in 0..10_000 {
            match g.next_txn() {
                TatpTxn::GetNewDestination { sf_type, .. }
                | TatpTxn::UpdateSubscriberData { sf_type, .. } => {
                    assert!((1..=4).contains(&sf_type))
                }
                TatpTxn::InsertCallForwarding {
                    sf_type,
                    start_time,
                    ..
                }
                | TatpTxn::DeleteCallForwarding {
                    sf_type,
                    start_time,
                    ..
                } => {
                    assert!((1..=4).contains(&sf_type));
                    assert!([0, 8, 16].contains(&start_time));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn nurand_is_nonuniform() {
        // The OR-fold biases sids toward ones with more set bits.
        let mut g = TatpGenerator::new(1 << 16, 14);
        let mut high = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if g.next_txn().sid() >= (1 << 15) {
                high += 1;
            }
        }
        let ratio = high as f64 / n as f64;
        assert!(
            ratio > 0.6,
            "upper-half share {ratio} should exceed uniform 0.5"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let seq = |seed| {
            let mut g = TatpGenerator::new(1000, seed);
            (0..20).map(|_| g.next_txn()).collect::<Vec<_>>()
        };
        assert_eq!(seq(1), seq(1));
        assert_ne!(seq(1), seq(2));
    }
}
