#![warn(missing_docs)]

//! # smart-workloads — workload generators for the SMART reproduction
//!
//! The drivers behind every experiment in the paper's evaluation:
//!
//! * [`zipf`] — Zipfian and scrambled-Zipfian key generators (Gray et
//!   al.), θ = 0.99 throughout §6;
//! * [`ycsb`] — the three YCSB mixes (write-heavy / read-heavy /
//!   read-only) used for the hash-table and B+Tree studies;
//! * [`smallbank`] — the SmallBank OLTP mix (85 % read-write);
//! * [`tatp`] — the TATP telecom mix (80 % read-only);
//! * [`latency`] — an HDR-style histogram for median/p99 reporting.
//!
//! Everything is seeded and deterministic.

pub mod latency;
pub mod smallbank;
pub mod tatp;
pub mod ycsb;
pub mod zipf;

pub use latency::LatencyRecorder;
pub use smallbank::{SmallBankGenerator, SmallBankTxn};
pub use tatp::{TatpGenerator, TatpTxn};
pub use ycsb::{Mix, YcsbGenerator, YcsbOp};
pub use zipf::{ScrambledZipfian, Zipfian};
