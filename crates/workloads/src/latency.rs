//! Log-bucketed latency histogram (HDR-style) for percentile reporting.

use std::time::Duration;

const SUB_BUCKETS: usize = 64; // per power of two
const OCTAVES: usize = 36; // up to ~64 s in nanoseconds

/// Records durations and reports percentiles with ≤ ~1.6 % relative error.
///
/// ```rust
/// use smart_rt::Duration;
/// use smart_workloads::latency::LatencyRecorder;
///
/// let mut rec = LatencyRecorder::new();
/// for us in 1..=100u64 {
///     rec.record(Duration::from_micros(us));
/// }
/// let p50 = rec.percentile(0.50);
/// assert!(p50 >= Duration::from_micros(48) && p50 <= Duration::from_micros(53));
/// ```
#[derive(Clone)]
pub struct LatencyRecorder {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl std::fmt::Debug for LatencyRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyRecorder")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.percentile(0.5))
            .field("p99", &self.percentile(0.99))
            .finish()
    }
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(ns: u64) -> usize {
    if ns < SUB_BUCKETS as u64 {
        return ns as usize;
    }
    let octave = 63 - ns.leading_zeros() as usize; // >= 6
    let shift = octave - 6; // mantissa resolution
    let sub = ((ns >> shift) - SUB_BUCKETS as u64) as usize;
    (octave - 5) * SUB_BUCKETS + sub
}

fn bucket_upper_ns(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        return idx as u64;
    }
    let octave = idx / SUB_BUCKETS + 5;
    let sub = idx % SUB_BUCKETS;
    let shift = octave - 6;
    ((SUB_BUCKETS + sub) as u64 + 1) << shift
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder {
            buckets: vec![0; OCTAVES * SUB_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        let idx = bucket_of(ns).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// The `p`-quantile (e.g. `0.5` for the median, `0.99` for the tail).
    /// Returns zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Duration {
        assert!((0.0..=1.0).contains(&p), "quantile must be in [0,1]");
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((self.count as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_nanos(bucket_upper_ns(idx).min(self.max_ns));
            }
        }
        self.max()
    }

    /// Median latency.
    pub fn median(&self) -> Duration {
        self.percentile(0.5)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Duration {
        self.percentile(0.99)
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.sum_ns = 0;
        self.max_ns = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_reports_zero() {
        let rec = LatencyRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.percentile(0.99), Duration::ZERO);
        assert_eq!(rec.mean(), Duration::ZERO);
    }

    #[test]
    fn single_sample_everywhere() {
        let mut rec = LatencyRecorder::new();
        rec.record(Duration::from_micros(7));
        for p in [0.0, 0.5, 0.99, 1.0] {
            let v = rec.percentile(p).as_nanos() as f64;
            assert!((v - 7_000.0).abs() / 7_000.0 < 0.03, "p{p}: {v}");
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut rec = LatencyRecorder::new();
        for us in 1..=1000u64 {
            rec.record(Duration::from_micros(us));
        }
        let p50 = rec.median().as_nanos() as f64;
        let p99 = rec.p99().as_nanos() as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.05, "p50 {p50}");
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.05, "p99 {p99}");
        assert_eq!(rec.count(), 1000);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut rec = LatencyRecorder::new();
        for ns in [123u64, 4_567, 89_012, 3_456_789, 123_456_789] {
            rec.reset();
            rec.record(Duration::from_nanos(ns));
            let got = rec.percentile(0.5).as_nanos() as f64;
            assert!((got - ns as f64).abs() / ns as f64 <= 0.02, "{ns} -> {got}");
        }
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        for _ in 0..100 {
            a.record(Duration::from_micros(10));
            b.record(Duration::from_micros(1000));
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        let p25 = a.percentile(0.25).as_nanos();
        let p75 = a.percentile(0.75).as_nanos();
        assert!(p25 < 20_000, "p25 {p25}");
        assert!(p75 > 900_000, "p75 {p75}");
        assert_eq!(a.max(), Duration::from_micros(1000));
    }

    #[test]
    fn mean_is_exact() {
        let mut rec = LatencyRecorder::new();
        rec.record(Duration::from_nanos(100));
        rec.record(Duration::from_nanos(300));
        assert_eq!(rec.mean(), Duration::from_nanos(200));
    }

    #[test]
    fn buckets_are_monotone() {
        let mut prev = 0;
        for idx in 0..OCTAVES * SUB_BUCKETS {
            let up = bucket_upper_ns(idx);
            assert!(up >= prev, "idx {idx}");
            prev = up;
        }
        // bucket_of and bucket_upper_ns agree.
        for ns in [0u64, 1, 63, 64, 65, 127, 128, 1000, 65_536, 1 << 30] {
            let idx = bucket_of(ns);
            assert!(bucket_upper_ns(idx) >= ns, "ns {ns}");
        }
    }
}
