//! `smart-lab`: a command-line driver for ad-hoc experiments — the same
//! runners the figure benches use, with every knob on the command line.
//!
//! ```text
//! smart-lab micro --policy thread-aware --threads 96 --depth 8
//! smart-lab ht    --system smart --mix read-heavy --threads 48
//! smart-lab dtx   --system ford --workload smallbank --threads 32
//! smart-lab bt    --system smart-bt --mix read-only --threads 94
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use smart_bench::{run_bt, run_dtx, run_ht, BtParams, BtVariant, DtxParams, DtxWorkload, HtParams};
use smart_lab::smart::{run_microbench, MicroOp, MicrobenchSpec, QpPolicy, SmartConfig};
use smart_lab::smart_rt::Duration;
use smart_lab::smart_workloads::ycsb::Mix;

const USAGE: &str = "\
smart-lab — experiment driver for the SMART reproduction

USAGE:
  smart-lab <command> [--key value]...

COMMANDS:
  micro   raw RDMA micro-benchmark (Figures 3/4/13 style)
            --policy   shared | multiplexed | per-thread-qp |
                       per-thread-context | thread-aware   [thread-aware]
            --threads  N                                    [96]
            --depth    work requests per batch              [8]
            --op       read8 | write8 | cas                 [read8]
            --throttle on | off                             [off]
            --ms       measurement window, virtual ms       [5]
  ht      hash table (RACE / SMART-HT)
            --system   race | smart                         [smart]
            --mix      write-heavy | read-heavy | read-only |
                       update-only                          [read-heavy]
            --threads  N                                    [48]
            --keys     N                                    [200000]
            --ms       measurement window, virtual ms       [5]
  dtx     distributed transactions (FORD+ / SMART-DTX)
            --system   ford | smart                         [smart]
            --workload smallbank | tatp                     [smallbank]
            --threads  N                                    [48]
            --rows     N                                    [20000]
            --ms       measurement window, virtual ms       [5]
  bt      B+Tree (Sherman+ / Sherman+ w/ SL / SMART-BT)
            --system   sherman | sherman-sl | smart-bt      [smart-bt]
            --mix      write-heavy | read-heavy | read-only [read-only]
            --threads  N                                    [48]
            --keys     N                                    [200000]
            --ms       measurement window, virtual ms       [5]
  help    this text
";

struct Args(HashMap<String, String>);

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut map = HashMap::new();
        let mut it = raw.iter();
        while let Some(k) = it.next() {
            let Some(key) = k.strip_prefix("--") else {
                return Err(format!("expected --key, got {k:?}"));
            };
            let Some(v) = it.next() else {
                return Err(format!("--{key} is missing a value"));
            };
            map.insert(key.to_string(), v.clone());
        }
        Ok(Args(map))
    }

    fn get(&self, key: &str, default: &str) -> String {
        self.0
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn usize(&self, key: &str, default: usize) -> Result<usize, String> {
        self.get(key, &default.to_string())
            .parse()
            .map_err(|_| format!("--{key} wants a number"))
    }

    fn u64(&self, key: &str, default: u64) -> Result<u64, String> {
        self.get(key, &default.to_string())
            .parse()
            .map_err(|_| format!("--{key} wants a number"))
    }
}

fn parse_policy(s: &str) -> Result<QpPolicy, String> {
    Ok(match s {
        "shared" => QpPolicy::SharedQp,
        "multiplexed" => QpPolicy::MultiplexedQp { threads_per_qp: 8 },
        "per-thread-qp" => QpPolicy::PerThreadQp,
        "per-thread-context" => QpPolicy::PerThreadContext,
        "thread-aware" => QpPolicy::ThreadAwareDoorbell,
        other => return Err(format!("unknown policy {other:?}")),
    })
}

fn parse_mix(s: &str) -> Result<Mix, String> {
    Ok(match s {
        "write-heavy" => Mix::WriteHeavy,
        "read-heavy" => Mix::ReadHeavy,
        "read-only" => Mix::ReadOnly,
        "update-only" => Mix::UpdateOnly,
        other => return Err(format!("unknown mix {other:?}")),
    })
}

fn cmd_micro(args: &Args) -> Result<(), String> {
    let threads = args.usize("threads", 96)?;
    let policy = parse_policy(&args.get("policy", "thread-aware"))?;
    let throttle = args.get("throttle", "off") == "on";
    let op = match args.get("op", "read8").as_str() {
        "read8" => MicroOp::Read(8),
        "write8" => MicroOp::Write(8),
        "cas" => MicroOp::Cas,
        other => return Err(format!("unknown op {other:?}")),
    };
    let cfg = SmartConfig::baseline(policy, threads).with_work_req_throttle(throttle);
    let mut spec = MicrobenchSpec::new(cfg, threads, args.usize("depth", 8)?);
    spec.op = op;
    spec.warmup = if throttle {
        Duration::from_millis(45)
    } else {
        Duration::from_millis(2)
    };
    spec.measure = Duration::from_millis(args.u64("ms", 5)?);
    let r = run_microbench(&spec);
    println!(
        "micro {policy:?} threads={threads} depth={} op={op:?} throttle={throttle}",
        spec.depth
    );
    println!(
        "  {:.2} MOPS | {:.1} DRAM B/WR | WQE hit {:.3} | MTT hit {:.3}",
        r.mops, r.dram_bytes_per_op, r.wqe_hit_ratio, r.mtt_hit_ratio
    );
    Ok(())
}

fn smart_or_baseline(system: &str, threads: usize) -> Result<SmartConfig, String> {
    Ok(match system {
        "smart" => SmartConfig::smart_full(threads),
        "race" | "ford" | "baseline" => SmartConfig::baseline(QpPolicy::PerThreadQp, threads),
        other => return Err(format!("unknown system {other:?}")),
    })
}

fn cmd_ht(args: &Args) -> Result<(), String> {
    let threads = args.usize("threads", 48)?;
    let system = args.get("system", "smart");
    let mut p = HtParams::new(
        smart_or_baseline(&system, threads)?,
        threads,
        args.u64("keys", 200_000)?,
        parse_mix(&args.get("mix", "read-heavy"))?,
    );
    p.measure = Duration::from_millis(args.u64("ms", 5)?);
    let r = run_ht(&p);
    println!(
        "ht system={system} threads={threads} mix={:?} keys={}",
        p.mix, p.keys
    );
    println!(
        "  {:.3} Mops | p50 {:?} | p99 {:?} | {:.2} CAS retries/op",
        r.mops, r.median, r.p99, r.avg_retries
    );
    Ok(())
}

fn cmd_dtx(args: &Args) -> Result<(), String> {
    let threads = args.usize("threads", 48)?;
    let system = args.get("system", "smart");
    let workload = match args.get("workload", "smallbank").as_str() {
        "smallbank" => DtxWorkload::SmallBank,
        "tatp" => DtxWorkload::Tatp,
        other => return Err(format!("unknown workload {other:?}")),
    };
    let mut p = DtxParams::new(
        smart_or_baseline(&system, threads)?,
        threads,
        workload,
        args.u64("rows", 20_000)?,
    );
    p.measure = Duration::from_millis(args.u64("ms", 5)?);
    let r = run_dtx(&p);
    println!(
        "dtx system={system} threads={threads} workload={workload:?} rows={}",
        p.rows
    );
    println!(
        "  {:.4} Mtxn/s | p50 {:?} | p99 {:?} | abort rate {:.2}%",
        r.mops,
        r.median,
        r.p99,
        r.abort_rate * 100.0
    );
    Ok(())
}

fn cmd_bt(args: &Args) -> Result<(), String> {
    let threads = args.usize("threads", 48)?;
    let variant = match args.get("system", "smart-bt").as_str() {
        "sherman" => BtVariant::ShermanPlus,
        "sherman-sl" => BtVariant::ShermanPlusSl,
        "smart-bt" => BtVariant::SmartBt,
        other => return Err(format!("unknown system {other:?}")),
    };
    let mut p = BtParams::new(
        variant,
        threads,
        args.u64("keys", 200_000)?,
        parse_mix(&args.get("mix", "read-only"))?,
    );
    p.measure = Duration::from_millis(args.u64("ms", 5)?);
    let r = run_bt(&p);
    println!(
        "bt system={} threads={threads} mix={:?} keys={}",
        variant.name(),
        p.mix,
        p.keys
    );
    println!(
        "  {:.3} Mops | p50 {:?} | p99 {:?}",
        r.mops, r.median, r.p99
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        print!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            print!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "micro" => cmd_micro(&args),
        "ht" => cmd_ht(&args),
        "dtx" => cmd_dtx(&args),
        "bt" => cmd_bt(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n");
            print!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
