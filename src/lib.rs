#![warn(missing_docs)]

//! Umbrella crate for the SMART reproduction. Re-exports the workspace crates.
pub use smart;
pub use smart_check;
pub use smart_fault;
pub use smart_ford;
pub use smart_race;
pub use smart_rnic;
pub use smart_rt;
pub use smart_serve;
pub use smart_sherman;
pub use smart_trace;
pub use smart_workloads;
