//! Tier-1 gate for `smart-check`: each planted concurrency bug is
//! detected, the real workloads stay clean across 16 perturbed
//! schedules, and same-seed exploration output is byte-identical.

use std::cell::Cell;
use std::rc::Rc;

use smart_lab::smart::{run_microbench, MicrobenchSpec, QpPolicy, SmartConfig, SmartContext};
use smart_lab::smart_check::{
    check_sink, explore, probe_events, recording_sink, Finding, RunReport,
};
use smart_lab::smart_race::{RaceConfig, RaceHashTable};
use smart_lab::smart_rnic::{Cluster, ClusterConfig};
use smart_lab::smart_rt::sync::{Notify, Semaphore};
use smart_lab::smart_rt::{Duration, SchedulePolicy, SimHandle, Simulation};
use smart_lab::smart_sherman::{ShermanConfig, ShermanTree};
use smart_lab::smart_trace::{Actor, SyncOp, TraceSink};

fn instrumented_sim(seed: u64, policy: SchedulePolicy) -> (Simulation, TraceSink) {
    let sim = Simulation::with_policy(seed, policy);
    let sink = recording_sink();
    sim.handle().install_tracer(sink.clone());
    (sim, sink)
}

// ---------------------------------------------------------------------------
// Planted bug 1: unprotected read-modify-write across a suspension point.
// ---------------------------------------------------------------------------

/// Two tasks increment a shared counter with a sleep between the read and
/// the write and no lock: a classic lost update. The atomicity detector
/// must report it, and the final counter value proves the update really
/// was lost.
#[test]
fn planted_lost_update_is_caught() {
    let (mut sim, sink) = instrumented_sim(7, SchedulePolicy::Fifo);
    let cell_id = sim.handle().fresh_probe_id();
    let counter = Rc::new(Cell::new(0u64));
    for tid in 1..=2u64 {
        let h: SimHandle = sim.handle();
        let counter = Rc::clone(&counter);
        sim.spawn(async move {
            let actor = Actor::thread(tid);
            let v = counter.get();
            h.probe_sync(actor, "counter", SyncOp::Read, cell_id);
            h.sleep(Duration::from_nanos(10)).await;
            counter.set(v + 1);
            h.probe_sync(actor, "counter", SyncOp::Write, cell_id);
        });
    }
    sim.run();
    assert_eq!(counter.get(), 1, "one increment must be lost");

    let findings = check_sink(&sink);
    assert_eq!(
        findings.len(),
        1,
        "exactly the lost update is reported: {findings:#?}"
    );
    assert_eq!(findings[0].detector, "atomicity");
    assert!(
        findings[0].message.contains("counter#"),
        "finding names the cell: {}",
        findings[0].message
    );
}

/// The same increment protected by a mutex-style semaphore held across
/// the suspension is atomic — no finding, and no update is lost.
#[test]
fn guarded_rmw_is_not_flagged() {
    let (mut sim, sink) = instrumented_sim(7, SchedulePolicy::Fifo);
    let h0 = sim.handle();
    let cell_id = h0.fresh_probe_id();
    let mutex = Semaphore::new(1);
    mutex.set_probe(h0.fresh_probe_id(), "counter_mutex");
    let counter = Rc::new(Cell::new(0u64));
    for tid in 1..=2u64 {
        let h = sim.handle();
        let counter = Rc::clone(&counter);
        let mutex = mutex.clone();
        sim.spawn(async move {
            let actor = Actor::thread(tid);
            let g = mutex.acquire_guard(1, &h, actor, "counter_mutex").await;
            let v = counter.get();
            h.probe_sync(actor, "counter", SyncOp::Read, cell_id);
            h.sleep(Duration::from_nanos(10)).await;
            counter.set(v + 1);
            h.probe_sync(actor, "counter", SyncOp::Write, cell_id);
            g.release();
        });
    }
    sim.run();
    assert_eq!(counter.get(), 2, "no update lost under the lock");
    let findings = check_sink(&sink);
    assert!(findings.is_empty(), "clean run: {findings:#?}");
}

// ---------------------------------------------------------------------------
// Planted bug 2: two locks acquired in opposite orders.
// ---------------------------------------------------------------------------

/// One task takes `lock_a` then `lock_b`; a later task takes them in the
/// opposite order. The runs never overlap, so nothing deadlocks at
/// runtime — but the acquisition-order cycle is a deadlock waiting for
/// the right interleaving, and the lock-order detector must report it.
#[test]
fn planted_lock_order_cycle_is_caught() {
    let (mut sim, sink) = instrumented_sim(3, SchedulePolicy::Fifo);
    let h0 = sim.handle();
    let a = Semaphore::new(1);
    a.set_probe(h0.fresh_probe_id(), "lock_a");
    let b = Semaphore::new(1);
    b.set_probe(h0.fresh_probe_id(), "lock_b");

    let (h, a2, b2) = (sim.handle(), a.clone(), b.clone());
    sim.spawn(async move {
        let actor = Actor::thread(1);
        let ga = a2.acquire_guard(1, &h, actor, "lock_a").await;
        let gb = b2.acquire_guard(1, &h, actor, "lock_b").await;
        h.sleep(Duration::from_nanos(5)).await;
        gb.release();
        ga.release();
    });
    let h = sim.handle();
    sim.spawn(async move {
        let actor = Actor::thread(2);
        h.sleep(Duration::from_nanos(100)).await;
        let gb = b.acquire_guard(1, &h, actor, "lock_b").await;
        let ga = a.acquire_guard(1, &h, actor, "lock_a").await;
        ga.release();
        gb.release();
    });
    sim.run();

    let findings = check_sink(&sink);
    let cycles: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.detector == "lock-order")
        .collect();
    assert_eq!(cycles.len(), 1, "one cycle reported: {findings:#?}");
    assert!(
        cycles[0].message.contains("lock_a") && cycles[0].message.contains("lock_b"),
        "cycle names both locks: {}",
        cycles[0].message
    );
}

// ---------------------------------------------------------------------------
// Planted bug 3: lost wakeup, exposed only by schedule perturbation.
// ---------------------------------------------------------------------------

/// A waiter and a notifier race on the same virtual instant:
/// `notify_all` stores no permit, so if the notifier wins the timer tie
/// the waiter registers after the notification and parks forever. The
/// FIFO schedule happens to order the waiter first — only the seeded
/// tie-break exploration exposes the stranded task.
#[test]
fn planted_lost_wakeup_is_caught_by_exploration() {
    let run = |policy: SchedulePolicy, salt: u64| -> RunReport {
        let (mut sim, sink) = instrumented_sim(13, policy);
        let notify = Notify::new();
        let (h, n) = (sim.handle(), notify.clone());
        sim.spawn(async move {
            h.sleep(Duration::from_nanos(10)).await;
            n.notified().await;
        });
        let h = sim.handle();
        sim.spawn(async move {
            h.sleep(Duration::from_nanos(10)).await;
            notify.notify_all();
        });
        sim.run();
        RunReport {
            salt,
            policy,
            probes: probe_events(&sink.events()).len(),
            stuck_tasks: sim.live_tasks(),
            findings: check_sink(&sink),
        }
    };
    let report = explore(16, run);
    assert!(report.runs[0].is_clean(), "FIFO hides the bug");
    let dirty = report.dirty_salts();
    assert!(
        !dirty.is_empty(),
        "some perturbed schedule must strand the waiter:\n{}",
        report.render()
    );
    for salt in &dirty {
        assert_eq!(report.runs[*salt as usize].stuck_tasks, 1);
    }
}

// ---------------------------------------------------------------------------
// Clean workloads: zero findings across 16 schedules.
// ---------------------------------------------------------------------------

/// The Figure 3 microbenchmark (full SMART stack: coroutine slots, QP
/// locks, doorbells, throttle epochs) stays free of lock cycles and
/// atomicity violations under every perturbed schedule.
#[test]
fn fig03_microbench_is_clean_across_16_schedules() {
    let report = explore(16, |policy, salt| {
        let sink = recording_sink();
        let mut spec = MicrobenchSpec::new(SmartConfig::smart_full(4), 4, 4);
        spec.warmup = Duration::from_micros(100);
        spec.measure = Duration::from_micros(400);
        spec.schedule = policy;
        spec.trace = Some(sink.clone());
        let bench = run_microbench(&spec);
        assert!(bench.ops > 0, "bench made progress");
        RunReport {
            salt,
            policy,
            probes: probe_events(&sink.events()).len(),
            stuck_tasks: 0,
            findings: check_sink(&sink),
        }
    });
    assert!(report.is_clean(), "findings:\n{}", report.render());
    assert!(
        report.runs.iter().all(|r| r.probes > 0),
        "sync probes flowed in every run:\n{}",
        report.render()
    );
}

/// RACE insert/get/update mix under the sanitizer: detector-clean, every
/// key ends at a value some client actually wrote, and write credits are
/// conserved in every thread at quiescence.
fn race_mix_run(policy: SchedulePolicy, salt: u64) -> RunReport {
    let (mut sim, sink) = instrumented_sim(9, policy);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    let table = RaceHashTable::create(cluster.blades(), RaceConfig::default());
    for k in 0..200u64 {
        table.load(&k.to_le_bytes(), &k.to_le_bytes());
    }
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(4),
    );
    let mut throttles = Vec::new();
    let mut joins = Vec::new();
    for t in 0..4u64 {
        let thread = ctx.create_thread();
        throttles.push(Rc::clone(thread.throttle()));
        let table = Rc::clone(&table);
        joins.push(sim.spawn(async move {
            let coro = thread.coroutine();
            for i in 0..25u64 {
                let key = (1_000 + t * 100 + i).to_le_bytes();
                table
                    .insert(&coro, &key, &i.to_le_bytes())
                    .await
                    .expect("insert");
                table.get(&coro, &(i % 200).to_le_bytes()).await;
                // Every thread hammers key 0: contended CAS arbitration.
                table
                    .update(&coro, &0u64.to_le_bytes(), &(9_000 + t).to_le_bytes())
                    .await
                    .expect("update");
            }
        }));
    }
    sim.run_for(Duration::from_secs(2));

    let mut findings = check_sink(&sink);
    let stuck = joins.iter().filter(|j| !j.is_finished()).count();

    // Witness check: the hot key must hold one of the four written
    // values; each inserted key must hold its only writer's value.
    let mut witnesses = vec![(
        0u64.to_le_bytes().to_vec(),
        (0..4u64)
            .map(|t| (9_000 + t).to_le_bytes().to_vec())
            .collect(),
    )];
    for t in 0..4u64 {
        for i in 0..25u64 {
            witnesses.push((
                (1_000 + t * 100 + i).to_le_bytes().to_vec(),
                vec![i.to_le_bytes().to_vec()],
            ));
        }
    }
    for msg in table.check_witnesses(&witnesses) {
        findings.push(Finding {
            detector: "invariant",
            message: msg,
        });
    }
    for throttle in &throttles {
        for msg in throttle.conservation_violations() {
            findings.push(Finding {
                detector: "invariant",
                message: msg,
            });
        }
    }
    RunReport {
        salt,
        policy,
        probes: probe_events(&sink.events()).len(),
        stuck_tasks: stuck,
        findings,
    }
}

#[test]
fn race_mix_is_clean_across_16_schedules() {
    let report = explore(16, race_mix_run);
    assert!(report.is_clean(), "findings:\n{}", report.render());
}

/// Sherman insert mix: detector-clean and the tree holds exactly the
/// loaded plus inserted pairs under every schedule.
#[test]
fn sherman_mix_is_clean_across_16_schedules() {
    let report = explore(16, |policy, salt| {
        let (mut sim, sink) = instrumented_sim(21, policy);
        let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
        let tree = ShermanTree::create(cluster.blades(), ShermanConfig::with_speculative_lookup());
        for k in 0..300u64 {
            tree.load(k, k + 1);
        }
        let ctx = SmartContext::new(
            cluster.compute(0),
            cluster.blades(),
            SmartConfig::smart_full(4),
        );
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let thread = ctx.create_thread();
            let tree = Rc::clone(&tree);
            joins.push(sim.spawn(async move {
                let coro = thread.coroutine();
                for i in 0..20u64 {
                    let k = 1_000 + t * 50 + i;
                    tree.insert(&coro, k, k).await;
                }
            }));
        }
        sim.run_for(Duration::from_secs(2));

        let mut findings = check_sink(&sink);
        let stuck = joins.iter().filter(|j| !j.is_finished()).count();
        let mut expected: Vec<(u64, u64)> = (0..300).map(|k| (k, k + 1)).collect();
        let mut inserted: Vec<(u64, u64)> = (0..4u64)
            .flat_map(|t| (0..20u64).map(move |i| 1_000 + t * 50 + i))
            .map(|k| (k, k))
            .collect();
        inserted.sort_unstable();
        expected.extend(inserted);
        for msg in tree.consistency_violations(&expected) {
            findings.push(Finding {
                detector: "invariant",
                message: msg,
            });
        }
        RunReport {
            salt,
            policy,
            probes: probe_events(&sink.events()).len(),
            stuck_tasks: stuck,
            findings,
        }
    });
    assert!(report.is_clean(), "findings:\n{}", report.render());
}

// ---------------------------------------------------------------------------
// Reproducibility: same seed, same bytes.
// ---------------------------------------------------------------------------

/// Running the identical exploration twice must render byte-identical
/// reports — the sanitizer itself obeys the determinism contract.
#[test]
fn same_seed_exploration_is_byte_identical() {
    let a = explore(6, race_mix_run).render();
    let b = explore(6, race_mix_run).render();
    assert_eq!(a, b, "same exploration, same bytes");
}

/// Sanity: a baseline config (per-thread QP, no sharing) also explores
/// clean — the detectors key on real probes, not on the SMART policies.
#[test]
fn baseline_config_microbench_is_clean() {
    let report = explore(4, |policy, salt| {
        let sink = recording_sink();
        let mut spec = MicrobenchSpec::new(SmartConfig::baseline(QpPolicy::PerThreadQp, 4), 4, 4);
        spec.warmup = Duration::from_micros(100);
        spec.measure = Duration::from_micros(300);
        spec.schedule = policy;
        spec.trace = Some(sink.clone());
        run_microbench(&spec);
        RunReport {
            salt,
            policy,
            probes: probe_events(&sink.events()).len(),
            stuck_tasks: 0,
            findings: check_sink(&sink),
        }
    });
    assert!(report.is_clean(), "findings:\n{}", report.render());
}
