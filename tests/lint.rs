//! Root-package mirror of `crates/lint/tests/lint_workspace.rs`, so the
//! lint gate runs even under a bare `cargo test` (which skips workspace
//! members' own test suites).

#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = smart_lint::run_lint(root);
    assert!(
        diags.is_empty(),
        "smart-lint found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
