//! Workspace-level integration tests: the full stack (runtime → RNIC →
//! SMART → applications) exercised together, including determinism and
//! multi-compute-node scenarios.

use std::rc::Rc;

use smart_lab::smart::{QpPolicy, SmartConfig, SmartContext};
use smart_lab::smart_ford::{backoff_after_abort, SmallBank};
use smart_lab::smart_race::{RaceConfig, RaceHashTable};
use smart_lab::smart_rnic::{Cluster, ClusterConfig};
use smart_lab::smart_rt::{Duration, Simulation};
use smart_lab::smart_sherman::{ShermanConfig, ShermanTree};
use smart_lab::smart_workloads::smallbank::SmallBankGenerator;
use smart_lab::smart_workloads::ycsb::{Mix, YcsbGenerator, YcsbOp};

/// All three applications share one cluster and run concurrently; every
/// data structure stays consistent.
#[test]
fn three_applications_share_a_cluster() {
    let mut sim = Simulation::new(1);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));

    let table = RaceHashTable::create(cluster.blades(), RaceConfig::default());
    let tree = ShermanTree::create(cluster.blades(), ShermanConfig::with_speculative_lookup());
    let bank = SmallBank::create(cluster.blades(), 64, 1_000);
    for k in 0..500u64 {
        table.load(&k.to_le_bytes(), &k.to_be_bytes());
        tree.load(k, k + 1);
    }

    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(3),
    );

    // One thread per application.
    let t1 = ctx.create_thread();
    let table2 = Rc::clone(&table);
    let j1 = sim.spawn(async move {
        let coro = t1.coroutine();
        for k in 0..200u64 {
            table2
                .update(&coro, &k.to_le_bytes(), &(k * 7).to_le_bytes())
                .await
                .expect("update");
        }
    });

    let t2 = ctx.create_thread();
    let tree2 = Rc::clone(&tree);
    let j2 = sim.spawn(async move {
        let coro = t2.coroutine();
        for k in 500..700u64 {
            tree2.insert(&coro, k, k).await;
        }
        assert_eq!(tree2.get(&coro, 650).await, Some(650));
    });

    let t3 = ctx.create_thread();
    let bank2 = Rc::clone(&bank);
    let log = bank.db().alloc_log_region();
    let j3 = sim.spawn(async move {
        let coro = t3.coroutine();
        let mut gen = SmallBankGenerator::new(64, 9);
        for _ in 0..100 {
            let txn = gen.next_txn();
            let mut attempt = 0;
            while bank2.execute(&coro, log, &txn).await.is_err() {
                attempt += 1;
                backoff_after_abort(&coro, attempt).await;
            }
        }
    });

    sim.run_for(Duration::from_secs(3));
    assert!(j1.is_finished() && j2.is_finished() && j3.is_finished());

    // Cross-checks after the dust settles.
    assert_eq!(table.stats().updates.get(), 200);
    let pairs = tree.check_consistency();
    assert_eq!(pairs.len(), 700);
    assert_eq!(bank.stats().committed.get(), 100);
}

/// The same seed must reproduce the exact same execution, event for
/// event — the core promise of the deterministic simulator.
#[test]
fn identical_seeds_reproduce_identical_runs() {
    fn run(seed: u64) -> (u64, u64, u64) {
        let mut sim = Simulation::new(seed);
        let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
        let table = RaceHashTable::create(cluster.blades(), RaceConfig::default());
        for k in 0..2_000u64 {
            table.load(&k.to_le_bytes(), &k.to_le_bytes());
        }
        let ctx = SmartContext::new(
            cluster.compute(0),
            cluster.blades(),
            SmartConfig::smart_full(8),
        );
        for t in 0..8 {
            let thread = ctx.create_thread();
            let table = Rc::clone(&table);
            let mut gen = YcsbGenerator::new(2_000, 0.99, Mix::WriteHeavy, t);
            sim.spawn(async move {
                let coro = thread.coroutine();
                loop {
                    match gen.next_op() {
                        YcsbOp::Lookup(k) => {
                            table.get(&coro, &k.to_le_bytes()).await;
                        }
                        YcsbOp::Update(k) => {
                            let _ = table.update(&coro, &k.to_le_bytes(), b"new-val8").await;
                        }
                    }
                }
            });
        }
        sim.run_for(Duration::from_millis(5));
        let node = cluster.compute(0).counters();
        (
            node.ops_completed,
            table.stats().lookups.get() + table.stats().updates.get(),
            table.stats().cas_retries.get(),
        )
    }
    let a = run(77);
    let b = run(77);
    let c = run(78);
    assert_eq!(a, b, "same seed, same virtual execution");
    assert_ne!(a, c, "different seed, different execution");
}

/// Two compute nodes hammer the same hash table; writes from both are
/// visible everywhere and CAS arbitration stays correct.
#[test]
fn two_compute_nodes_share_one_table() {
    let mut sim = Simulation::new(5);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(2, 2));
    let table = RaceHashTable::create(cluster.blades(), RaceConfig::default());
    table.load(b"shared", b"init0000");

    let mut joins = Vec::new();
    for node in 0..2u64 {
        let ctx = SmartContext::new(
            cluster.compute(node as usize),
            cluster.blades(),
            SmartConfig::smart_full(4),
        );
        for t in 0..4u64 {
            let thread = ctx.create_thread();
            let table = Rc::clone(&table);
            joins.push(sim.spawn(async move {
                let coro = thread.coroutine();
                for i in 0..25u64 {
                    let key = (node * 1000 + t * 100 + i).to_le_bytes();
                    table
                        .insert(&coro, &key, &i.to_le_bytes())
                        .await
                        .expect("insert");
                    table
                        .update(&coro, b"shared", &(node * 10 + t).to_le_bytes())
                        .await
                        .expect("update");
                }
            }));
        }
    }
    sim.run_for(Duration::from_secs(3));
    for j in &joins {
        assert!(j.is_finished());
    }

    // Every key inserted by either node is readable from the other.
    let probe_ctx = SmartContext::new(
        cluster.compute(1),
        cluster.blades(),
        SmartConfig::baseline(QpPolicy::PerThreadQp, 1),
    );
    let thread = probe_ctx.create_thread();
    let table2 = Rc::clone(&table);
    sim.block_on(async move {
        let coro = thread.coroutine();
        for node in 0..2u64 {
            for t in 0..4u64 {
                for i in 0..25u64 {
                    let key = (node * 1000 + t * 100 + i).to_le_bytes();
                    assert_eq!(
                        table2.get(&coro, &key).await.as_deref(),
                        Some(i.to_le_bytes().as_slice())
                    );
                }
            }
        }
        let hot = table2.get(&coro, b"shared").await.expect("hot key present");
        let v = u64::from_le_bytes(hot.try_into().expect("8 bytes"));
        assert!(v < 20, "final value must come from one of the writers");
    });
    assert_eq!(table.stats().updates.get(), 200);
}

/// SMART's headline effect end-to-end: with 48 threads, the full SMART
/// configuration beats the per-thread-QP baseline on the read-heavy
/// hash-table workload.
#[test]
fn smart_beats_baseline_end_to_end() {
    fn throughput(cfg: SmartConfig) -> u64 {
        let mut sim = Simulation::new(11);
        let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
        let table = RaceHashTable::create(cluster.blades(), RaceConfig::default());
        for k in 0..10_000u64 {
            table.load(&k.to_le_bytes(), &k.to_le_bytes());
        }
        let ctx = SmartContext::new(cluster.compute(0), cluster.blades(), cfg);
        let base = YcsbGenerator::new(10_000, 0.99, Mix::ReadHeavy, 3);
        for t in 0..48u64 {
            let thread = ctx.create_thread();
            for c in 0..8u64 {
                let coro = thread.coroutine();
                let table = Rc::clone(&table);
                let mut g = base.fork(t * 8 + c);
                sim.spawn(async move {
                    loop {
                        match g.next_op() {
                            YcsbOp::Lookup(k) => {
                                table.get(&coro, &k.to_le_bytes()).await;
                            }
                            YcsbOp::Update(k) => {
                                let _ = table.update(&coro, &k.to_le_bytes(), b"freshval").await;
                            }
                        }
                    }
                });
            }
        }
        sim.run_for(Duration::from_millis(45));
        let before = table.stats().lookups.get();
        sim.run_for(Duration::from_millis(5));
        table.stats().lookups.get() - before
    }
    let baseline = throughput(SmartConfig::baseline(QpPolicy::PerThreadQp, 48));
    let smart = throughput(SmartConfig::smart_full(48));
    assert!(
        smart > baseline * 2,
        "SMART {smart} lookups vs baseline {baseline} in the same window"
    );
}
