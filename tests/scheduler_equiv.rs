//! Scheduler-equivalence gate: the executor's timer queue is an
//! implementation detail, and replacing it must not move a single event.
//! A mixed workload — a fig03-style microbench under both `SchedulePolicy`
//! variants, plus a chaos-plan hash-table run through the full recovery
//! stack — is replayed against golden files captured from the original
//! `BinaryHeap` scheduler. The Perfetto JSON export (every event, with
//! nanosecond timestamps, in emission order) and the report fingerprints
//! must match byte-for-byte.
//!
//! Regenerate after an *intentional* semantic change with:
//! `SMART_UPDATE_GOLDENS=1 cargo test -q --test scheduler_equiv`
//! and review the golden diff like any other code change.
//!
//! The second half of this file is the sequential <-> parallel
//! **differential matrix** gating the PDES hosting layer: every pinned
//! bench shape (fig03 microbench, fig07 hash table, fig14 throttle
//! stack, a serve phase and an 8-seed chaos sweep) runs at 1, 2 and 4
//! simulation workers, and the `workers > 1` legs must reproduce the
//! sequential report fingerprints and trace JSON byte-for-byte.
//!
//! The third section is the **decomposed-plan matrix** gating the blade
//! engine domains: fig07 and fig_serve run under `per_blade` and
//! `for_workers` partitions at 1/2/4/8 engine workers, and every leg —
//! report bytes, blade-domain artifacts, epoch/envelope counters and
//! trace JSON — must reproduce the 1-worker reference exactly. The
//! reference fingerprints are published under `target/equiv/` for the
//! CI `pdes` job to upload.

use std::path::PathBuf;

use smart_bench::{
    run_ht, run_ht_decomposed, run_ht_hosted, run_microbench_hosted, run_serve_hosted, serve_spec,
    HtParams, RunReport,
};
use smart_lab::smart::{run_microbench, MicroOp, MicrobenchSpec, QpPolicy, SmartConfig};
use smart_lab::smart_fault::FaultPlan;
use smart_lab::smart_rnic::DomainPlan;
use smart_lab::smart_rt::{Duration, SchedulePolicy};
use smart_lab::smart_serve::run_serve_decomposed;
use smart_lab::smart_trace::TraceSink;
use smart_lab::smart_workloads::ycsb::Mix;

/// Ring capacity for the golden traces: small enough to keep the checked
/// in files reviewable, large enough that the tail window spans many
/// timer fires, wakes and op completions.
const TRACE_EVENTS: usize = 1024;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

/// Compares `got` against the committed golden, or rewrites the golden
/// when `SMART_UPDATE_GOLDENS=1` is set.
fn assert_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("SMART_UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}; regenerate with SMART_UPDATE_GOLDENS=1",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "{name} diverged from the heap-scheduler golden; if the schedule \
         change is intentional, regenerate with SMART_UPDATE_GOLDENS=1 \
         and review the diff"
    );
}

/// One fig03-style microbench point (thread-aware doorbell QPs, depth 8)
/// with a tracer installed, under the given tie-break policy.
fn fig03_run(schedule: SchedulePolicy) -> (String, String) {
    let sink = TraceSink::with_capacity(TRACE_EVENTS);
    let mut spec = MicrobenchSpec::new(
        SmartConfig::baseline(QpPolicy::ThreadAwareDoorbell, 4),
        4,
        8,
    );
    spec.op = MicroOp::Read(8);
    spec.warmup = Duration::from_micros(300);
    spec.measure = Duration::from_millis(1);
    spec.seed = 42;
    spec.trace = Some(sink.clone());
    spec.schedule = schedule;
    let report = run_microbench(&spec);
    (format!("{report:?}\n"), sink.chrome_json())
}

/// A chaos-plan hash-table run: a QP error mid-batch and a blade crash
/// mid-window, recovered through the full retry/re-establish stack, with
/// the tracer on. This exercises `with_timeout` (and therefore cancelled
/// sleeps) on the recovery path.
fn fault_run() -> (String, String) {
    let sink = TraceSink::with_capacity(TRACE_EVENTS);
    let plan = FaultPlan::new()
        .qp_error_at(Duration::from_micros(400), 0, None)
        .blade_crash_at(Duration::from_micros(1_200), 0, Duration::from_micros(100));
    let mut p = HtParams::new(SmartConfig::smart_full(4), 4, 2_000, Mix::UpdateOnly);
    p.warmup = Duration::from_millis(1);
    p.measure = Duration::from_millis(2);
    p.seed = 1907;
    p.trace = Some(sink.clone());
    p.fault = Some(plan);
    let report = run_ht(&p);
    (report_fingerprint(&report), sink.chrome_json())
}

/// Renders every behavioural field of a [`RunReport`]. `sim_events` is
/// deliberately excluded: it counts executor bookkeeping (polls + timer
/// fires), and purging cancelled timers legitimately changes it without
/// changing any simulated outcome.
fn report_fingerprint(r: &RunReport) -> String {
    let RunReport {
        ops,
        mops,
        median,
        p99,
        avg_retries,
        retry_hist,
        abort_rate,
        faults_injected,
        faults_seen,
        faults_recovered,
        recovery_p50,
        recovery_p99,
        recovery_hist: _,
        conservation,
        sim_events: _,
    } = r;
    format!(
        "ops={ops}\nmops={mops:?}\nmedian={median:?}\np99={p99:?}\n\
         avg_retries={avg_retries:?}\nretry_hist={retry_hist:?}\n\
         abort_rate={abort_rate:?}\nfaults_injected={faults_injected}\n\
         faults_seen={faults_seen}\nfaults_recovered={faults_recovered}\n\
         recovery_p50={recovery_p50:?}\nrecovery_p99={recovery_p99:?}\n\
         conservation={conservation:?}\n"
    )
}

#[test]
fn fig03_fifo_matches_heap_scheduler_golden() {
    let (report, trace) = fig03_run(SchedulePolicy::Fifo);
    assert!(trace.len() > 1_000, "trace export is implausibly small");
    assert_golden("scheduler_equiv_fig03_fifo.report.txt", &report);
    assert_golden("scheduler_equiv_fig03_fifo.trace.json", &trace);
}

#[test]
fn fig03_seeded_salts_match_heap_scheduler_goldens() {
    for salt in [1u64, 2] {
        let (report, trace) = fig03_run(SchedulePolicy::SeededTieBreak(salt));
        assert_golden(
            &format!("scheduler_equiv_fig03_salt{salt}.report.txt"),
            &report,
        );
        assert_golden(
            &format!("scheduler_equiv_fig03_salt{salt}.trace.json"),
            &trace,
        );
    }
}

#[test]
fn fault_plan_run_matches_heap_scheduler_golden() {
    let (report, trace) = fault_run();
    assert!(
        !report.contains("faults_recovered=0\n"),
        "the chaos plan must actually exercise the recovery path:\n{report}"
    );
    assert_golden("scheduler_equiv_fault.report.txt", &report);
    assert_golden("scheduler_equiv_fault.trace.json", &trace);
}

// ---------------------------------------------------------------------------
// Sequential <-> parallel differential matrix (PDES hosting layer)
// ---------------------------------------------------------------------------

/// Worker counts every matrix cell runs at. The sequential leg
/// (`workers == 1`, always first) is the reference; the others must
/// reproduce its bytes exactly.
///
/// A single-*core* host is deliberately **not** a skip: hosting is an
/// OS-thread mechanism and byte identity must hold under any time-slicing
/// the kernel picks, so running the matrix on one core tests exactly the
/// claim we care about. The only skip is a host where thread parallelism
/// cannot be probed at all (`available_parallelism` erroring), in which
/// case spawning worker threads is itself suspect and only the
/// sequential leg runs. `SMART_SIM_WORKERS` appends an extra column so a
/// CI job (or a curious human) can widen the matrix without editing the
/// test.
fn worker_matrix() -> Vec<usize> {
    if let Err(e) = std::thread::available_parallelism() {
        eprintln!(
            "scheduler_equiv: cannot probe host parallelism ({e}); \
             running the sequential leg only"
        );
        return vec![1];
    }
    let mut matrix = vec![1, 2, 4];
    let extra = smart_lab::smart_rt::pdes::env_workers(1);
    if !matrix.contains(&extra) {
        matrix.push(extra);
    }
    matrix
}

/// Runs one matrix cell at every worker count and asserts the
/// `(report fingerprint, trace JSON)` pair is byte-identical to the
/// sequential leg.
fn assert_workers_equivalent<F>(label: &str, run: F)
where
    F: Fn(usize) -> (String, String),
{
    let matrix = worker_matrix();
    let (ref_fp, ref_trace) = run(matrix[0]);
    assert!(
        !ref_fp.is_empty(),
        "{label}: sequential leg produced an empty fingerprint"
    );
    for &workers in &matrix[1..] {
        let (fp, trace) = run(workers);
        assert_eq!(
            fp, ref_fp,
            "{label}: report bytes diverged between 1 and {workers} workers"
        );
        assert_eq!(
            trace, ref_trace,
            "{label}: trace JSON diverged between 1 and {workers} workers"
        );
    }
}

#[test]
fn matrix_fig03_microbench_is_byte_identical_across_workers() {
    assert_workers_equivalent("fig03", |workers| {
        let mut spec = MicrobenchSpec::new(
            SmartConfig::baseline(QpPolicy::ThreadAwareDoorbell, 4),
            4,
            8,
        );
        spec.op = MicroOp::Read(8);
        spec.warmup = Duration::from_micros(300);
        spec.measure = Duration::from_millis(1);
        spec.seed = 42;
        spec.workers = workers;
        let (report, metrics, trace) = run_microbench_hosted(&spec, true);
        (format!("{report:?}\n{metrics:?}\n"), trace.unwrap())
    });
}

#[test]
fn matrix_fig07_hash_table_is_byte_identical_across_workers() {
    assert_workers_equivalent("fig07-small", |workers| {
        let mut p = HtParams::new(SmartConfig::smart_full(8), 8, 5_000, Mix::WriteHeavy);
        p.warmup = Duration::from_micros(500);
        p.measure = Duration::from_millis(1);
        p.seed = 42;
        p.workers = workers;
        let (report, trace) = run_ht_hosted(&p, true);
        (format!("{report:?}\n"), trace.unwrap())
    });
}

#[test]
fn matrix_fig14_throttle_stack_is_byte_identical_across_workers() {
    assert_workers_equivalent("fig14-small", |workers| {
        let mut cfg =
            SmartConfig::baseline(QpPolicy::ThreadAwareDoorbell, 8).with_work_req_throttle(true);
        cfg.conflict_backoff = true;
        cfg.dynamic_backoff_limit = true;
        cfg.coroutine_throttle = true;
        let mut p = HtParams::new(cfg, 8, 5_000, Mix::UpdateOnly);
        p.warmup = Duration::from_micros(500);
        p.measure = Duration::from_millis(1);
        p.seed = 42;
        p.workers = workers;
        let (report, trace) = run_ht_hosted(&p, true);
        (format!("{report:?}\n"), trace.unwrap())
    });
}

#[test]
fn matrix_serve_phase_is_byte_identical_across_workers() {
    assert_workers_equivalent("serve", |workers| {
        let mut spec = serve_spec(800, 0.05, 42);
        spec.threads = 2;
        spec.depth = 4;
        spec.workers = workers;
        let (report, trace) = run_serve_hosted(&spec, true);
        (format!("{}\n{report:?}\n", report.render()), trace.unwrap())
    });
}

// ---------------------------------------------------------------------------
// Decomposed-plan differential matrix (blades as real engine domains)
// ---------------------------------------------------------------------------

/// Engine worker counts every decomposed cell runs at. Unlike the hosted
/// matrix — where `workers` picks the *partition* — a decomposed cell
/// fixes its [`DomainPlan`] up front, so every count here executes the
/// identical partition and the bytes must not move at all.
const ENGINE_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Writes the reference fingerprint under `target/equiv/` so the CI
/// `pdes` job can upload the whole matrix as a build artifact.
fn publish_fingerprint(name: &str, fp: &str) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/equiv");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(name), fp);
    }
}

/// Runs one decomposed cell at every engine worker count and asserts the
/// full fingerprint (report bytes, blade artifacts, engine counters and
/// trace JSON) is byte-identical to the 1-worker reference.
fn assert_decomposed_equivalent<F>(label: &str, run: F)
where
    F: Fn(usize) -> String,
{
    let ref_fp = run(ENGINE_WORKERS[0]);
    assert!(
        !ref_fp.is_empty(),
        "{label}: sequential leg produced an empty fingerprint"
    );
    publish_fingerprint(&format!("{label}.fp.txt"), &ref_fp);
    for &workers in &ENGINE_WORKERS[1..] {
        let fp = run(workers);
        assert_eq!(
            fp, ref_fp,
            "{label}: decomposed bytes diverged between 1 and {workers} engine workers"
        );
    }
}

#[test]
fn matrix_fig07_decomposed_plans_are_byte_identical_across_engine_workers() {
    let mut p = HtParams::new(SmartConfig::smart_full(4), 4, 2_000, Mix::WriteHeavy);
    p.warmup = Duration::from_micros(500);
    p.measure = Duration::from_millis(1);
    p.seed = 42;
    let blades = p.blades as u32;
    for (pname, plan) in [
        ("per_blade", DomainPlan::per_blade(1, blades)),
        ("for_workers4", DomainPlan::for_workers(4, 1, blades)),
    ] {
        let p = p.clone();
        assert_decomposed_equivalent(&format!("fig07_decomposed_{pname}"), move |workers| {
            let d = run_ht_decomposed(&p, &plan, workers, true);
            format!(
                "{}blade_log:\n{}epochs={} envelopes={} blade_requests={}\ntrace:\n{}\n",
                report_fingerprint(&d.report),
                d.blade_log,
                d.epochs,
                d.envelopes,
                d.blade_requests,
                d.trace.as_deref().unwrap_or("")
            )
        });
    }
}

#[test]
fn matrix_serve_decomposed_plans_are_byte_identical_across_engine_workers() {
    let mut spec = serve_spec(800, 0.05, 42);
    spec.threads = 2;
    spec.depth = 4;
    let blades = spec.blades as u32;
    for (pname, plan) in [
        ("per_blade", DomainPlan::per_blade(1, blades)),
        ("for_workers4", DomainPlan::for_workers(4, 1, blades)),
    ] {
        let spec = spec.clone();
        assert_decomposed_equivalent(&format!("fig_serve_decomposed_{pname}"), move |workers| {
            let d = run_serve_decomposed(&spec, &plan, workers, true);
            format!(
                "{}\n{:?}\nblade_log:\n{}epochs={} envelopes={}\ntrace:\n{}\n",
                d.report.render(),
                d.report,
                d.blade_log,
                d.epochs,
                d.envelopes,
                d.trace.as_deref().unwrap_or("")
            )
        });
    }
}

#[test]
fn decomposed_envelope_accounting_matches_cross_domain_wrs() {
    // Fault-free runs in the two pinned bench shapes: every work request
    // that crosses the partition becomes exactly one request envelope at
    // its blade domain (plus one completion envelope back), and the
    // node-side crossing counter agrees with the engine's delivery count.
    for (label, cfg) in [
        (
            "fig03",
            SmartConfig::baseline(QpPolicy::ThreadAwareDoorbell, 2),
        ),
        ("fig07", SmartConfig::smart_full(2)),
    ] {
        let mut p = HtParams::new(cfg, 2, 500, Mix::ReadHeavy);
        p.warmup = Duration::from_micros(300);
        p.measure = Duration::from_millis(1);
        p.seed = 7;
        let plan = DomainPlan::per_blade(1, p.blades as u32);
        let d = run_ht_decomposed(&p, &plan, 2, false);
        assert!(d.report.ops > 0, "{label}: no ops through blade domains");
        assert_eq!(
            d.cross_domain_wrs, d.blade_requests,
            "{label}: node crossing counter != request envelopes delivered"
        );
        assert_eq!(
            d.envelopes,
            2 * d.blade_requests,
            "{label}: request/completion envelope pairing broken"
        );
    }
}

#[test]
fn matrix_fault_seed_sweep_is_byte_identical_across_workers() {
    // Eight seeded chaos plans (random packet loss / RNR / latency
    // spikes / crash events), each replayed at every worker count. No
    // trace here — eight full recovery-path runs per leg is the cost
    // budget; the other cells already pin trace bytes.
    assert_workers_equivalent("fault-sweep", |workers| {
        let mut fp = String::new();
        for seed in 0..8u64 {
            let plan = FaultPlan::random(seed, Duration::from_millis(1), 1, 2);
            let mut p = HtParams::new(SmartConfig::smart_full(4), 4, 1_000, Mix::UpdateOnly);
            p.warmup = Duration::from_micros(300);
            p.measure = Duration::from_millis(1);
            p.seed = 1907 + seed;
            p.fault = Some(plan);
            p.workers = workers;
            let (report, _) = run_ht_hosted(&p, false);
            fp.push_str(&format!("seed={seed}\n{}", report_fingerprint(&report)));
        }
        (fp, String::new())
    });
}
