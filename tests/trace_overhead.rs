//! Overhead guard: trace hooks never advance simulated time or touch the
//! RNG, so a run with tracing enabled, disabled or absent must execute
//! the *same* simulated schedule. We assert exact op-count equality —
//! strictly stronger than the "within 2 %" acceptance criterion.

use smart_lab::smart::{run_microbench, MicroOp, MicrobenchSpec, QpPolicy, SmartConfig};
use smart_lab::smart_rt::Duration;
use smart_lab::smart_trace::TraceSink;

fn spec(trace: Option<TraceSink>) -> MicrobenchSpec {
    let mut spec = MicrobenchSpec::new(
        SmartConfig::baseline(QpPolicy::ThreadAwareDoorbell, 16),
        16,
        8,
    );
    spec.op = MicroOp::Read(8);
    spec.warmup = Duration::from_micros(500);
    spec.measure = Duration::from_millis(2);
    spec.trace = trace;
    spec
}

#[test]
fn tracing_has_zero_simulated_time_overhead() {
    let baseline = run_microbench(&spec(None));
    let disabled = run_microbench(&spec(Some(TraceSink::disabled())));
    let enabled_sink = TraceSink::new();
    let enabled = run_microbench(&spec(Some(enabled_sink.clone())));

    assert_eq!(
        baseline.ops, disabled.ops,
        "a disabled sink changed the simulated schedule"
    );
    assert_eq!(
        baseline.ops, enabled.ops,
        "an enabled sink changed the simulated schedule"
    );
    assert!(
        !enabled_sink.is_empty(),
        "enabled sink recorded nothing — the guard would be vacuous"
    );
}
