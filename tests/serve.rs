//! Tier-1 gate for `smart-serve`: same-seed runs render byte-identical
//! reports, a controller that never sheds is observationally identical
//! to running with no controller at all, and membership churn conserves
//! the balance-ledger invariants.

use smart_bench::serve_spec;
use smart_lab::smart_rt::Duration;
use smart_lab::smart_serve::{run_serve, AdmissionConfig, MembershipPlan, RatePlan, ServeSpec};

/// A small spec (one leave+join window, ~20k arrivals) that keeps the
/// gate fast in debug builds.
fn small_spec(seed: u64) -> ServeSpec {
    let plan = RatePlan::new()
        .phase("ramp", Duration::from_millis(3), 0.0, 1_500_000.0)
        .phase("steady", Duration::from_millis(6), 1_500_000.0, 1_500_000.0)
        .phase("churn", Duration::from_millis(6), 1_500_000.0, 750_000.0);
    let mut spec = ServeSpec::new(seed, 10_000, plan);
    spec.membership =
        MembershipPlan::new().leave_at(Duration::from_millis(5), 1, Duration::from_millis(5));
    spec
}

#[test]
fn same_seed_runs_render_byte_identical_reports() {
    let mut spec = small_spec(11);
    spec.admission = Some(AdmissionConfig {
        rate: 1_000_000,
        burst: 128,
        max_queue: 2_048,
    });
    let a = run_serve(&spec);
    let b = run_serve(&spec);
    assert_eq!(a.render(), b.render());
    assert!(a.shed() > 0, "the controller should engage in this spec");
    assert!(a.conservation.is_empty(), "{:?}", a.conservation);
}

#[test]
fn standard_scenario_is_deterministic_across_runs() {
    // The exact spec `fig_serve` sweeps, at its smallest point.
    let a = run_serve(&serve_spec(20_000, 0.5, 42));
    let b = run_serve(&serve_spec(20_000, 0.5, 42));
    assert_eq!(a.render(), b.render());
    assert_eq!(a.ops_digest, b.ops_digest);
}

#[test]
fn unlimited_controller_is_identical_to_no_controller() {
    let mut open = small_spec(23);
    open.admission = None;
    let mut gated = small_spec(23);
    gated.admission = Some(AdmissionConfig::unlimited());

    let a = run_serve(&open);
    let b = run_serve(&gated);
    assert_eq!(
        a.stream_signature(),
        b.stream_signature(),
        "a controller that never sheds must not perturb the op stream"
    );
    assert_eq!(a.ops_digest, b.ops_digest);
    assert_eq!(a.shed(), 0);
    assert_eq!(b.shed(), 0);
    // The two runs *should* describe their admission setup differently —
    // that line is deliberately outside the signature.
    assert_ne!(a.admission_desc, b.admission_desc);
}

#[test]
fn membership_churn_conserves_balance_invariants() {
    let mut spec = small_spec(31);
    // Two windows on different blades, plus a second leave of blade 2
    // overlapping nothing (sequential churn).
    spec.membership = MembershipPlan::new()
        .leave_at(Duration::from_millis(4), 1, Duration::from_millis(4))
        .leave_at(Duration::from_millis(10), 2, Duration::from_millis(3));
    let r = run_serve(&spec);
    assert!(r.conservation.is_empty(), "{:?}", r.conservation);
    assert_eq!(r.final_epoch, 4, "two leave+join windows");
    assert!(r.completed() > 0);
    assert_eq!(
        r.faults_seen, r.faults_recovered,
        "every surfaced fault must recover through the try_* path"
    );
    assert!(r.distinct_served > 0);
}
