//! Tracing must not weaken the determinism gate: a contended RACE update
//! run traced twice with the same seed must export **byte-identical**
//! Chrome trace JSON — every event, timestamp, track and argument. A
//! different seed must diverge (the test would otherwise pass vacuously
//! on an empty trace).

use std::rc::Rc;

use smart_lab::smart::{SmartConfig, SmartContext};
use smart_lab::smart_race::{RaceConfig, RaceHashTable};
use smart_lab::smart_rnic::{Cluster, ClusterConfig};
use smart_lab::smart_rt::{Duration, Simulation};
use smart_lab::smart_trace::TraceSink;
use smart_lab::smart_workloads::ycsb::{Mix, YcsbGenerator, YcsbOp};

fn traced_run(seed: u64) -> String {
    const KEYS: u64 = 2_000;
    const THREADS: u64 = 8;

    let mut sim = Simulation::new(seed);
    let sink = TraceSink::new();
    sim.handle().install_tracer(sink.clone());
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    let table = RaceHashTable::create(cluster.blades(), RaceConfig::default());
    for k in 0..KEYS {
        table.load(&k.to_le_bytes(), &k.to_le_bytes());
    }
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(THREADS as usize),
    );
    for t in 0..THREADS {
        let thread = ctx.create_thread();
        let table = Rc::clone(&table);
        let mut gen = YcsbGenerator::new(KEYS, 0.99, Mix::UpdateOnly, t);
        sim.spawn(async move {
            let coro = thread.coroutine();
            loop {
                match gen.next_op() {
                    YcsbOp::Lookup(k) => {
                        table.get(&coro, &k.to_le_bytes()).await;
                    }
                    YcsbOp::Update(k) => {
                        let _ = table.update(&coro, &k.to_le_bytes(), b"trace-det").await;
                    }
                }
            }
        });
    }
    sim.run_for(Duration::from_millis(2));
    sink.chrome_json()
}

#[test]
fn same_seed_exports_identical_json() {
    let a = traced_run(7);
    let b = traced_run(7);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed traces diverged");
}

#[test]
fn different_seed_exports_different_json() {
    let a = traced_run(7);
    let b = traced_run(8);
    assert_ne!(a, b, "trace is insensitive to the seed — vacuous export?");
}

#[test]
fn trace_records_contention_events() {
    let json = traced_run(7);
    // The contended run must exercise the interesting event kinds: op
    // scopes, lock waits and backoff sleeps all land in the export.
    for needle in ["ht_update", "qp_lock", "cas_backoff", "rnic_pipeline"] {
        assert!(json.contains(needle), "trace is missing {needle:?} events");
    }
}
