//! Regression gate for simulation determinism: a Figure-5-style RACE
//! update run (100 % updates, Zipfian θ = 0.99, contended) executed twice
//! with the same seed must produce a **bit-identical** fingerprint — every
//! op counter, the CAS-retry total, the full retry histogram and the
//! RNIC's hardware counters.
//!
//! This is the test that the `unordered-iter` lint rule exists to
//! protect: a single HashMap iterated anywhere on the hot path shows up
//! here as a diverging retry count long before anyone notices a skewed
//! plot.

use std::rc::Rc;

use smart_lab::smart::{SmartConfig, SmartContext};
use smart_lab::smart_race::{RaceConfig, RaceHashTable, RETRY_HIST_BUCKETS};
use smart_lab::smart_rnic::{Cluster, ClusterConfig};
use smart_lab::smart_rt::{Duration, Simulation};
use smart_lab::smart_workloads::ycsb::{Mix, YcsbGenerator, YcsbOp};

/// Everything observable about one run, compared bit-for-bit.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    updates: u64,
    lookups: u64,
    cas_retries: u64,
    retry_hist: [u64; RETRY_HIST_BUCKETS],
    node_ops: u64,
    wqe_hits: u64,
    wqe_misses: u64,
    mtt_hits: u64,
    mtt_misses: u64,
}

fn fig05_style_run(seed: u64) -> Fingerprint {
    const KEYS: u64 = 4_000;
    const THREADS: u64 = 8;

    let mut sim = Simulation::new(seed);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    let table = RaceHashTable::create(cluster.blades(), RaceConfig::default());
    for k in 0..KEYS {
        table.load(&k.to_le_bytes(), &k.to_le_bytes());
    }
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(THREADS as usize),
    );
    for t in 0..THREADS {
        let thread = ctx.create_thread();
        let table = Rc::clone(&table);
        // UpdateOnly + high skew: maximum CAS contention, the regime
        // where nondeterminism surfaces fastest.
        let mut gen = YcsbGenerator::new(KEYS, 0.99, Mix::UpdateOnly, t);
        sim.spawn(async move {
            let coro = thread.coroutine();
            loop {
                match gen.next_op() {
                    YcsbOp::Lookup(k) => {
                        table.get(&coro, &k.to_le_bytes()).await;
                    }
                    YcsbOp::Update(k) => {
                        let _ = table.update(&coro, &k.to_le_bytes(), b"det-test").await;
                    }
                }
            }
        });
    }
    sim.run_for(Duration::from_millis(5));

    let node = cluster.compute(0).counters();
    Fingerprint {
        updates: table.stats().updates.get(),
        lookups: table.stats().lookups.get(),
        cas_retries: table.stats().cas_retries.get(),
        retry_hist: table.stats().retry_histogram(),
        node_ops: node.ops_completed,
        wqe_hits: node.wqe_hits,
        wqe_misses: node.wqe_misses,
        mtt_hits: node.mtt_hits,
        mtt_misses: node.mtt_misses,
    }
}

#[test]
fn race_update_run_is_bit_identical_across_reruns() {
    let first = fig05_style_run(42);
    let second = fig05_style_run(42);
    assert!(
        first.updates > 0 && first.cas_retries > 0,
        "run must actually exercise contention: {first:?}"
    );
    assert_eq!(first, second, "same seed must replay bit-identically");
}

#[test]
fn race_update_run_depends_on_the_seed() {
    // Guards against the fingerprint being trivially constant (e.g. a
    // workload that ignores its RNG): different seeds must diverge.
    assert_ne!(fig05_style_run(42), fig05_style_run(43));
}
