//! Calibration gate for latency attribution: the trace must *reproduce
//! the paper's §3.1 diagnosis*. At 96 threads the shared and multiplexed
//! QP policies serialize every post on a QP spinlock, so DB-lock wait
//! accounts for the majority of operation latency; with thread-aware
//! doorbells the lock vanishes from the profile and the ~2 µs fabric
//! roundtrip dominates instead.

use smart_lab::smart::{run_microbench, MicrobenchSpec, QpPolicy, SmartConfig};
use smart_lab::smart_rt::Duration;
use smart_lab::smart_trace::{Category, TraceSink};

fn attributed_run(policy: QpPolicy) -> (f64, u64) {
    const THREADS: usize = 96;
    let mut spec = MicrobenchSpec::new(SmartConfig::baseline(policy, THREADS), THREADS, 8);
    spec.warmup = Duration::from_micros(300);
    spec.measure = Duration::from_millis(1);
    let sink = TraceSink::new();
    spec.trace = Some(sink.clone());
    let report = run_microbench(&spec);
    assert!(report.ops > 0, "no ops completed under {policy:?}");

    let attr = sink.attribution();
    let micro = attr
        .kind("micro")
        .unwrap_or_else(|| panic!("no \"micro\" ops recorded under {policy:?}"));
    (micro.share(Category::DbLock), micro.count())
}

#[test]
fn shared_qp_is_lock_dominated_at_96_threads() {
    let (share, ops) = attributed_run(QpPolicy::SharedQp);
    assert!(
        share > 0.5,
        "SharedQp: DB-lock share {share:.3} of op latency over {ops} ops — \
         expected the §3.1 lock bottleneck (> 50 %)"
    );
}

#[test]
fn multiplexed_qp_is_lock_dominated_at_96_threads() {
    let (share, ops) = attributed_run(QpPolicy::MultiplexedQp { threads_per_qp: 8 });
    assert!(
        share > 0.5,
        "MultiplexedQp(8): DB-lock share {share:.3} over {ops} ops — \
         expected the §3.1 lock bottleneck (> 50 %)"
    );
}

#[test]
fn thread_aware_doorbell_is_not_lock_dominated() {
    let (share, ops) = attributed_run(QpPolicy::ThreadAwareDoorbell);
    assert!(
        share < 0.5,
        "ThreadAwareDoorbell: DB-lock share {share:.3} over {ops} ops — \
         per-thread doorbells should remove the lock from the profile"
    );
}
