//! Tier-1 gate for the `smart-fault` chaos layer: planted fault plans
//! recover with zero invariant violations, permanent errors surface as
//! clean typed errors (never hangs), same-seed chaos runs are
//! byte-identical, and a seeded sweep of random healing plans leaves
//! every application consistent with no stranded coroutines and all
//! write credits conserved.

use std::rc::Rc;

use smart_bench::{parallel_map, run_ht, HtParams};
use smart_lab::smart::{RetryPolicy, SmartConfig, SmartContext, SmartThread};
use smart_lab::smart_fault::{FaultInjector, FaultPlan};
use smart_lab::smart_ford::{backoff_after_abort, DtxError, RecordId, SmallBank};
use smart_lab::smart_race::{RaceConfig, RaceError, RaceHashTable};
use smart_lab::smart_rnic::{Cluster, ClusterConfig, CqeError};
use smart_lab::smart_rt::{Duration, Simulation};
use smart_lab::smart_sherman::{ShermanConfig, ShermanTree};
use smart_lab::smart_workloads::smallbank::SmallBankTxn;
use smart_lab::smart_workloads::ycsb::Mix;

/// How many random plans the sweep tests draw. Override with
/// `FAULT_SWEEP_SEEDS=<n>` (the CI chaos job uses this to scale the
/// sweep independently of the tier-1 default).
fn sweep_seeds() -> u64 {
    std::env::var("FAULT_SWEEP_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

fn violations_of(threads: &[Rc<SmartThread>]) -> Vec<String> {
    threads
        .iter()
        .flat_map(|t| t.throttle().conservation_violations())
        .collect()
}

// ---------------------------------------------------------------------------
// Planted plan 1: QP error transition in the middle of a batch-heavy run.
// ---------------------------------------------------------------------------

/// Every QP on the compute node is forced into the error state while the
/// hash-table workload has work requests in flight. The flush errors must
/// be recovered transparently (re-establish + repost), every key must end
/// at a value some client wrote, and write credits must be conserved.
#[test]
fn qp_error_mid_batch_recovers_transparently() {
    let mut sim = Simulation::new(41);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    let plan = FaultPlan::new().qp_error_at(Duration::from_micros(120), 0, None);
    let injector = FaultInjector::install(&cluster, plan);
    let table = RaceHashTable::create(cluster.blades(), RaceConfig::default());
    for k in 0..200u64 {
        table.load(&k.to_le_bytes(), &k.to_le_bytes());
    }
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(4),
    );
    let mut threads = Vec::new();
    let mut joins = Vec::new();
    for t in 0..4u64 {
        let thread = ctx.create_thread();
        threads.push(Rc::clone(&thread));
        let table = Rc::clone(&table);
        joins.push(sim.spawn(async move {
            let coro = thread.coroutine();
            for i in 0..40u64 {
                let key = (1_000 + t * 100 + i).to_le_bytes();
                table
                    .insert(&coro, &key, &i.to_le_bytes())
                    .await
                    .expect("insert");
                let _ = table.get(&coro, &(i % 200).to_le_bytes()).await;
            }
        }));
    }
    sim.run_for(Duration::from_secs(1));
    for j in &joins {
        assert!(j.is_finished(), "a client is stranded after the QP error");
    }

    assert!(injector.stats().qp_errors > 0, "the QP error never fired");
    let seen: u64 = threads.iter().map(|t| t.stats().faults_seen.get()).sum();
    let recovered: u64 = threads
        .iter()
        .map(|t| t.stats().faults_recovered.get())
        .sum();
    assert!(seen > 0, "no in-flight WR was flushed by the error");
    assert!(recovered > 0, "nothing went through the recovery path");
    assert_eq!(violations_of(&threads), Vec::<String>::new());

    let mut witnesses = Vec::new();
    for t in 0..4u64 {
        for i in 0..40u64 {
            witnesses.push((
                (1_000 + t * 100 + i).to_le_bytes().to_vec(),
                vec![i.to_le_bytes().to_vec()],
            ));
        }
    }
    assert_eq!(table.check_witnesses(&witnesses), Vec::<String>::new());
}

// ---------------------------------------------------------------------------
// Planted plan 2: blade crash/restart while transactions are committing.
// ---------------------------------------------------------------------------

/// A memory blade crashes for 100 µs while SmallBank clients are mid
/// commit. Timeout completions and the post-restart region invalidation
/// must all be retried; afterwards the books balance exactly (only
/// money-conserving transactions run) and no record lock is left held.
#[test]
fn blade_crash_during_dtx_commit_recovers() {
    let mut sim = Simulation::new(43);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    let plan =
        FaultPlan::new().blade_crash_at(Duration::from_micros(150), 0, Duration::from_micros(100));
    let injector = FaultInjector::install(&cluster, plan);
    let accounts = 32u64;
    let initial = 1_000i64;
    let bank = SmallBank::create(cluster.blades(), accounts, initial);
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(4),
    );
    let mut threads = Vec::new();
    let mut joins = Vec::new();
    for t in 0..4u64 {
        let thread = ctx.create_thread();
        threads.push(Rc::clone(&thread));
        let bank = Rc::clone(&bank);
        let log = bank.db().alloc_log_region();
        joins.push(sim.spawn(async move {
            let coro = thread.coroutine();
            for i in 0..20u64 {
                let txn = SmallBankTxn::SendPayment {
                    from: (t * 20 + i) % 32,
                    to: (t * 20 + i + 7) % 32,
                    amount: 5,
                };
                let mut attempt = 0u32;
                while bank.execute(&coro, log, &txn).await.is_err() {
                    attempt += 1;
                    assert!(attempt < 1_000, "transaction livelocked after the crash");
                    backoff_after_abort(&coro, attempt).await;
                }
            }
        }));
    }
    sim.run_for(Duration::from_secs(1));
    for j in &joins {
        assert!(j.is_finished(), "a client is stranded after the crash");
    }
    assert_eq!(injector.stats().blade_crashes, 1);
    assert_eq!(
        bank.conservation_violations(accounts as i64 * 2 * initial),
        Vec::<String>::new()
    );
    assert_eq!(violations_of(&threads), Vec::<String>::new());
    assert_eq!(bank.stats().committed.get(), 4 * 20);
}

// ---------------------------------------------------------------------------
// Planted plan 3: 1 % packet loss, byte-identical replays.
// ---------------------------------------------------------------------------

/// The same seed must produce the same chaos: two hash-table runs under
/// 1 % injected packet loss render byte-identical reports, and a third
/// run with a different seed injects a different fault history.
#[test]
fn same_seed_chaos_runs_are_byte_identical() {
    let run = |seed: u64| -> String {
        let mut p = HtParams::new(SmartConfig::smart_full(4), 4, 5_000, Mix::ReadHeavy);
        p.warmup = Duration::from_micros(500);
        p.measure = Duration::from_millis(2);
        p.seed = seed;
        p.fault = Some(FaultPlan::new().with_packet_loss(0.01));
        let r = run_ht(&p);
        assert!(r.conservation.is_empty(), "{:?}", r.conservation);
        assert!(r.faults_injected > 0, "1 % loss injected nothing");
        assert!(r.faults_recovered > 0, "nothing recovered");
        format!("{r:?}")
    };
    let a = run(99);
    let b = run(99);
    let c = run(100);
    assert_eq!(a, b, "same seed, same chaos, same bytes");
    assert_ne!(a, c, "different seed must not replay the same faults");
}

// ---------------------------------------------------------------------------
// Planted plan 4: permanent errors surface as typed errors, not hangs.
// ---------------------------------------------------------------------------

/// Under a 100 % access-error plan every application's fallible entry
/// point returns its typed fault error immediately — no retries burn the
/// budget (permanent errors are not retriable) and nothing hangs.
#[test]
fn permanent_error_surfaces_without_hanging() {
    let mut sim = Simulation::new(47);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    let table = RaceHashTable::create(cluster.blades(), RaceConfig::default());
    table.load(b"k", b"v");
    let tree = ShermanTree::create(cluster.blades(), ShermanConfig::default());
    tree.load(7, 8);
    let bank = SmallBank::create(cluster.blades(), 8, 100);
    // Install after loading so host-side loads are unaffected; from here
    // on every work request fails with a permanent access error.
    let _injector = FaultInjector::install(&cluster, FaultPlan::new().with_access_errors(1.0));

    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(1).with_retry(RetryPolicy::default().with_max_retries(2)),
    );
    let thread = ctx.create_thread();
    let threads = vec![Rc::clone(&thread)];
    let join = sim.spawn(async move {
        let coro = thread.coroutine();
        let ht = table.try_get(&coro, b"k").await;
        assert_eq!(ht, Err(RaceError::Fault(CqeError::RemoteAccess)));
        let bt = tree.try_get(&coro, 7).await;
        let bt_err = bt.expect_err("tree lookup must fail");
        assert_eq!(bt_err.error, CqeError::RemoteAccess);
        assert_eq!(bt_err.attempts, 0, "permanent errors must not be retried");
        let log = bank.db().alloc_log_region();
        let mut txn = bank.db().begin(&coro, log);
        let dtx = txn.fetch(&[RecordId { table: 0, key: 1 }]).await;
        assert_eq!(
            dtx.expect_err("fetch must fail"),
            DtxError::Fault(CqeError::RemoteAccess)
        );
    });
    sim.run_for(Duration::from_secs(1));
    assert!(join.is_finished(), "permanent-error path hung");
    assert_eq!(violations_of(&threads), Vec::<String>::new());
}

// ---------------------------------------------------------------------------
// Seeded sweep: random healing plans across all three applications.
// ---------------------------------------------------------------------------

fn sweep_horizon() -> Duration {
    Duration::from_millis(1)
}

/// Hash table under a random healing plan: all clients finish, witnesses
/// hold, credits conserved.
fn ht_chaos(seed: u64, plan: FaultPlan) -> Vec<String> {
    let mut sim = Simulation::new(seed);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    let _injector = FaultInjector::install(&cluster, plan);
    let table = RaceHashTable::create(cluster.blades(), RaceConfig::default());
    for k in 0..100u64 {
        table.load(&k.to_le_bytes(), &k.to_le_bytes());
    }
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(2),
    );
    let mut threads = Vec::new();
    let mut joins = Vec::new();
    for t in 0..2u64 {
        let thread = ctx.create_thread();
        threads.push(Rc::clone(&thread));
        let table = Rc::clone(&table);
        joins.push(sim.spawn(async move {
            let coro = thread.coroutine();
            for i in 0..25u64 {
                let key = (500 + t * 100 + i).to_le_bytes();
                table
                    .insert(&coro, &key, &i.to_le_bytes())
                    .await
                    .expect("insert");
                let _ = table.get(&coro, &(i % 100).to_le_bytes()).await;
            }
        }));
    }
    sim.run_for(Duration::from_secs(2));
    let mut out = Vec::new();
    for (t, j) in joins.iter().enumerate() {
        if !j.is_finished() {
            out.push(format!("ht client {t} stranded"));
        }
    }
    let mut witnesses = Vec::new();
    for t in 0..2u64 {
        for i in 0..25u64 {
            witnesses.push((
                (500 + t * 100 + i).to_le_bytes().to_vec(),
                vec![i.to_le_bytes().to_vec()],
            ));
        }
    }
    out.extend(table.check_witnesses(&witnesses));
    out.extend(violations_of(&threads));
    out
}

/// SmallBank under a random healing plan: all clients finish, money is
/// conserved, no lock leaked, credits conserved.
fn dtx_chaos(seed: u64, plan: FaultPlan) -> Vec<String> {
    let mut sim = Simulation::new(seed);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    let _injector = FaultInjector::install(&cluster, plan);
    let accounts = 16u64;
    let initial = 500i64;
    let bank = SmallBank::create(cluster.blades(), accounts, initial);
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(2),
    );
    let mut threads = Vec::new();
    let mut joins = Vec::new();
    for t in 0..2u64 {
        let thread = ctx.create_thread();
        threads.push(Rc::clone(&thread));
        let bank = Rc::clone(&bank);
        let log = bank.db().alloc_log_region();
        joins.push(sim.spawn(async move {
            let coro = thread.coroutine();
            for i in 0..15u64 {
                let txn = SmallBankTxn::SendPayment {
                    from: (t * 15 + i) % 16,
                    to: (t * 15 + i + 3) % 16,
                    amount: 1,
                };
                let mut attempt = 0u32;
                while bank.execute(&coro, log, &txn).await.is_err() {
                    attempt += 1;
                    if attempt >= 2_000 {
                        return;
                    }
                    backoff_after_abort(&coro, attempt).await;
                }
            }
        }));
    }
    sim.run_for(Duration::from_secs(2));
    let mut out = Vec::new();
    for (t, j) in joins.iter().enumerate() {
        if !j.is_finished() {
            out.push(format!("dtx client {t} stranded"));
        }
    }
    out.extend(bank.conservation_violations(accounts as i64 * 2 * initial));
    out.extend(violations_of(&threads));
    out
}

/// Sherman under a random healing plan: all clients finish, the tree
/// holds exactly the loaded plus inserted pairs, credits conserved.
fn bt_chaos(seed: u64, plan: FaultPlan) -> Vec<String> {
    let mut sim = Simulation::new(seed);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    let _injector = FaultInjector::install(&cluster, plan);
    let tree = ShermanTree::create(cluster.blades(), ShermanConfig::with_speculative_lookup());
    for k in 0..150u64 {
        tree.load(k, k + 1);
    }
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(2),
    );
    let mut threads = Vec::new();
    let mut joins = Vec::new();
    for t in 0..2u64 {
        let thread = ctx.create_thread();
        threads.push(Rc::clone(&thread));
        let tree = Rc::clone(&tree);
        joins.push(sim.spawn(async move {
            let coro = thread.coroutine();
            for i in 0..15u64 {
                let k = 1_000 + t * 50 + i;
                tree.insert(&coro, k, k).await;
                let _ = tree.get(&coro, i % 150).await;
            }
        }));
    }
    sim.run_for(Duration::from_secs(2));
    let mut out = Vec::new();
    for (t, j) in joins.iter().enumerate() {
        if !j.is_finished() {
            out.push(format!("bt client {t} stranded"));
        }
    }
    let mut expected: Vec<(u64, u64)> = (0..150).map(|k| (k, k + 1)).collect();
    expected.extend(
        (0..2u64)
            .flat_map(|t| (0..15u64).map(move |i| 1_000 + t * 50 + i))
            .map(|k| (k, k)),
    );
    out.extend(tree.consistency_violations(&expected));
    out.extend(violations_of(&threads));
    out
}

/// The sweep itself: `FAULT_SWEEP_SEEDS` random healing plans, each run
/// against all three applications. Any violation anywhere fails with the
/// offending seed and plan description.
#[test]
fn random_healing_plans_leave_every_app_consistent() {
    let mut jobs = Vec::new();
    for seed in 0..sweep_seeds() {
        for (app, run) in [
            ("ht", ht_chaos as fn(u64, FaultPlan) -> Vec<String>),
            ("dtx", dtx_chaos),
            ("bt", bt_chaos),
        ] {
            jobs.push((seed, app, run));
        }
    }
    // Each (seed, app) chaos run is an independent simulation, so the
    // sweep fans out across OS threads; results merge in submission
    // order, so the failure report reads exactly like a sequential one.
    let failures: Vec<String> = parallel_map(jobs, |_, (seed, app, run)| {
        let plan = FaultPlan::random(seed, sweep_horizon(), 1, 2);
        assert!(plan.eventually_heals(), "random plans must heal");
        let violations = run(seed, plan.clone());
        if violations.is_empty() {
            None
        } else {
            Some(format!(
                "seed {seed} [{app}] plan `{}`: {violations:?}",
                plan.describe()
            ))
        }
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(failures.is_empty(), "chaos sweep failures:\n{failures:#?}");
}

/// Fault statistics of a random plan replay deterministically.
#[test]
fn random_plan_injection_is_deterministic() {
    let run = |seed: u64| -> (u64, String) {
        let mut sim = Simulation::new(5);
        let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
        let plan = FaultPlan::random(seed, sweep_horizon(), 1, 2);
        let injector = FaultInjector::install(&cluster, plan);
        let table = RaceHashTable::create(cluster.blades(), RaceConfig::default());
        for k in 0..50u64 {
            table.load(&k.to_le_bytes(), &k.to_le_bytes());
        }
        let ctx = SmartContext::new(
            cluster.compute(0),
            cluster.blades(),
            SmartConfig::smart_full(1),
        );
        let thread = ctx.create_thread();
        let t2 = Rc::clone(&thread);
        sim.spawn(async move {
            let coro = t2.coroutine();
            for i in 0..60u64 {
                let _ = table.get(&coro, &(i % 50).to_le_bytes()).await;
            }
        });
        sim.run_for(Duration::from_secs(1));
        (
            thread.stats().faults_seen.get(),
            format!("{:?}", injector.stats()),
        )
    };
    assert_eq!(run(3), run(3), "same plan seed, same fault history");
}
