//! smart-check quickstart: explore perturbed schedules of the Figure 3
//! micro-benchmark and a RACE insert/get/update mix, then print the
//! findings report.
//!
//! Run with: `cargo run --release --example check_quickstart [n_seeds]`
//!
//! Salt 0 is the unperturbed FIFO schedule every bench uses; salts 1..n
//! re-run the same seeded workload with timer ties broken differently.
//! Every perturbed schedule is still a legal cooperative interleaving,
//! so any finding — a lock-order cycle, a lost update, a stranded task,
//! a broken application invariant — is a real bug, with a witness.
//! The process exits non-zero if any schedule was dirty, so CI can gate
//! on it directly.

use std::rc::Rc;

use smart_bench::parallel_map;
use smart_lab::smart::{run_microbench, MicrobenchSpec, SmartConfig, SmartContext};
use smart_lab::smart_check::{
    check_sink, probe_events, recording_sink, ExploreReport, Finding, RunReport,
};
use smart_lab::smart_race::{RaceConfig, RaceHashTable};
use smart_lab::smart_rnic::{Cluster, ClusterConfig};
use smart_lab::smart_rt::{Duration, SchedulePolicy, Simulation};

/// Figure 3 micro-benchmark (full SMART stack) under the sanitizer.
fn fig03_run(policy: SchedulePolicy, salt: u64) -> RunReport {
    let sink = recording_sink();
    let mut spec = MicrobenchSpec::new(SmartConfig::smart_full(8), 8, 4);
    spec.warmup = Duration::from_micros(200);
    spec.measure = Duration::from_micros(800);
    spec.schedule = policy;
    spec.trace = Some(sink.clone());
    run_microbench(&spec);
    RunReport {
        salt,
        policy,
        probes: probe_events(&sink.events()).len(),
        stuck_tasks: 0,
        findings: check_sink(&sink),
    }
}

/// RACE hash-table mix: concurrent inserts, lookups and contended
/// updates, with the lost-update witness check at quiescence.
fn race_run(policy: SchedulePolicy, salt: u64) -> RunReport {
    let mut sim = Simulation::with_policy(9, policy);
    let sink = recording_sink();
    sim.handle().install_tracer(sink.clone());
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    let table = RaceHashTable::create(cluster.blades(), RaceConfig::default());
    for k in 0..200u64 {
        table.load(&k.to_le_bytes(), &k.to_le_bytes());
    }
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(4),
    );
    let mut joins = Vec::new();
    for t in 0..4u64 {
        let thread = ctx.create_thread();
        let table = Rc::clone(&table);
        joins.push(sim.spawn(async move {
            let coro = thread.coroutine();
            for i in 0..25u64 {
                let key = (1_000 + t * 100 + i).to_le_bytes();
                table
                    .insert(&coro, &key, &i.to_le_bytes())
                    .await
                    .expect("insert");
                table.get(&coro, &(i % 200).to_le_bytes()).await;
                table
                    .update(&coro, &0u64.to_le_bytes(), &(9_000 + t).to_le_bytes())
                    .await
                    .expect("update");
            }
        }));
    }
    sim.run_for(Duration::from_secs(2));

    let mut findings = check_sink(&sink);
    let mut witnesses = vec![(
        0u64.to_le_bytes().to_vec(),
        (0..4u64)
            .map(|t| (9_000 + t).to_le_bytes().to_vec())
            .collect(),
    )];
    for t in 0..4u64 {
        for i in 0..25u64 {
            witnesses.push((
                (1_000 + t * 100 + i).to_le_bytes().to_vec(),
                vec![i.to_le_bytes().to_vec()],
            ));
        }
    }
    for msg in table.check_witnesses(&witnesses) {
        findings.push(Finding {
            detector: "invariant",
            message: msg,
        });
    }
    RunReport {
        salt,
        policy,
        probes: probe_events(&sink.events()).len(),
        stuck_tasks: joins.iter().filter(|j| !j.is_finished()).count(),
        findings,
    }
}

/// Parallel twin of `smart_check::explore`: every salt is an independent
/// simulation, so salts fan out across OS threads (the sanitizer crates
/// themselves stay thread-free — the driver lives in `smart-bench`) and
/// reports merge in salt order, rendering byte-identical to a
/// sequential exploration.
fn explore_parallel(n_seeds: u64, run: fn(SchedulePolicy, u64) -> RunReport) -> ExploreReport {
    let salts: Vec<u64> = (0..n_seeds.max(1)).collect();
    let runs = parallel_map(salts, |_, salt| {
        let policy = if salt == 0 {
            SchedulePolicy::Fifo
        } else {
            SchedulePolicy::SeededTieBreak(salt)
        };
        run(policy, salt)
    });
    ExploreReport { runs }
}

fn print_report(name: &str, report: &ExploreReport) {
    println!("== {name} ==");
    print!("{}", report.render());
}

fn main() {
    let n_seeds: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("n_seeds must be a number"))
        .unwrap_or(16);

    let fig03 = explore_parallel(n_seeds, fig03_run);
    print_report("fig03 microbenchmark", &fig03);
    let race = explore_parallel(n_seeds, race_run);
    print_report("RACE insert/get/update mix", &race);

    if !fig03.is_clean() || !race.is_clean() {
        eprintln!("schedule exploration found concurrency bugs");
        std::process::exit(1);
    }
    println!("all {n_seeds} schedules clean in both workloads");
}
