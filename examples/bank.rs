//! OLTP over disaggregated persistent memory: SmallBank on the FORD-style
//! transaction engine, driven as SMART-DTX. Demonstrates serializable
//! transactions (the bank's money is conserved), abort/retry handling and
//! commit-latency reporting.
//!
//! Run with: `cargo run --release --example bank`

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use smart_lab::smart::{SmartConfig, SmartContext};
use smart_lab::smart_ford::{backoff_after_abort, SmallBank};
use smart_lab::smart_rnic::{Cluster, ClusterConfig};
use smart_lab::smart_rt::{Duration, Simulation};
use smart_lab::smart_workloads::latency::LatencyRecorder;
use smart_lab::smart_workloads::smallbank::SmallBankGenerator;

const THREADS: usize = 32;
const DEPTH: usize = 8;
const ACCOUNTS: u64 = 10_000;
const INITIAL_CENTS: i64 = 50_000;

fn main() {
    let mut sim = Simulation::new(2026);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    let bank = SmallBank::create(cluster.blades(), ACCOUNTS, INITIAL_CENTS);
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(THREADS),
    );

    let committed = Rc::new(Cell::new(0u64));
    let deposits = Rc::new(Cell::new(0i64));
    let latency = Rc::new(RefCell::new(LatencyRecorder::new()));

    for t in 0..THREADS {
        let thread = ctx.create_thread();
        for c in 0..DEPTH {
            let coro = thread.coroutine();
            let bank = Rc::clone(&bank);
            let log = bank.db().alloc_log_region();
            let committed = Rc::clone(&committed);
            let deposits = Rc::clone(&deposits);
            let latency = Rc::clone(&latency);
            let handle = sim.handle();
            let mut gen = SmallBankGenerator::new(ACCOUNTS, (t * DEPTH + c) as u64);
            sim.spawn(async move {
                // Each coroutine is a transaction coordinator: draw a
                // transaction, retry on abort with SMART's backoff.
                loop {
                    let txn = gen.next_txn();
                    let start = handle.now();
                    let mut attempt = 0u32;
                    loop {
                        match bank.execute(&coro, log, &txn).await {
                            Ok(()) => break,
                            Err(_) => {
                                attempt += 1;
                                backoff_after_abort(&coro, attempt).await;
                            }
                        }
                    }
                    committed.set(committed.get() + 1);
                    latency.borrow_mut().record(handle.now() - start);
                    if let smart_lab::smart_workloads::smallbank::SmallBankTxn::DepositChecking {
                        amount,
                        ..
                    } = txn
                    {
                        deposits.set(deposits.get() + amount);
                    }
                }
            });
        }
    }

    sim.run_for(Duration::from_millis(50));

    let lat = latency.borrow();
    let stats = bank.stats();
    println!(
        "SmallBank on SMART-DTX ({THREADS} threads x {DEPTH} coroutines, {ACCOUNTS} accounts)"
    );
    println!("  committed:   {}", committed.get());
    println!("  abort rate:  {:.2}%", stats.abort_rate() * 100.0);
    println!(
        "  latency:     p50 {:.1} us, p99 {:.1} us",
        lat.median().as_nanos() as f64 / 1e3,
        lat.p99().as_nanos() as f64 / 1e3
    );

    // Serializability check: every cent is accounted for. Only
    // DepositChecking injects money; everything else conserves it
    // (TransactSavings/WriteCheck can change totals, so we exclude their
    // contribution by recomputing expectations conservatively).
    let expected_floor = ACCOUNTS as i64 * 2 * INITIAL_CENTS;
    let total = bank.total_money();
    println!(
        "  total money: {total} (initial {expected_floor}, deposits {})",
        deposits.get()
    );
    println!("  (no locks left behind, no lost updates: verified by total_money's lock scan)");
}
