//! Minimal smart-serve tour: a three-phase diurnal rate plan over 20k
//! logical clients, an admission controller that sheds at the door, and
//! a blade that leaves and rejoins the roster mid-run.
//!
//! Run with: `cargo run --release --example serve_quickstart`

use smart_lab::smart_rt::Duration;
use smart_lab::smart_serve::{run_serve, AdmissionConfig, MembershipPlan, RatePlan, ServeSpec};

fn main() {
    let plan = RatePlan::new()
        .phase("ramp", Duration::from_millis(4), 0.0, 2_000_000.0)
        .phase("steady", Duration::from_millis(8), 2_000_000.0, 2_000_000.0)
        .phase("churn", Duration::from_millis(8), 2_000_000.0, 1_000_000.0);

    let mut spec = ServeSpec::new(7, 20_000, plan);
    spec.threads = 4;
    spec.depth = 16;
    spec.admission = Some(AdmissionConfig {
        rate: 1_500_000,
        burst: 256,
        max_queue: 4_096,
    });
    // Blade 1 announces departure at 8 ms and rejoins 6 ms later, in the
    // middle of the steady phase.
    spec.membership =
        MembershipPlan::new().leave_at(Duration::from_millis(8), 1, Duration::from_millis(6));

    let report = run_serve(&spec);
    print!("{}", report.render());
    assert!(
        report.conservation.is_empty(),
        "audit violations: {:?}",
        report.conservation
    );
}
