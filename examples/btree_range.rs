//! Ordered index on disaggregated memory: the Sherman-style B+Tree with
//! SMART-BT's speculative lookup. Loads a time-series-like key space,
//! then serves point lookups (fast path: one 16-byte READ) and range
//! scans (leaf-chain walks).
//!
//! Run with: `cargo run --release --example btree_range`

use std::rc::Rc;

use smart_lab::smart::{SmartConfig, SmartContext};
use smart_lab::smart_rnic::{Cluster, ClusterConfig};
use smart_lab::smart_rt::Simulation;
use smart_lab::smart_sherman::{ShermanConfig, ShermanTree};

fn main() {
    let mut sim = Simulation::new(99);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));

    // SMART-BT: speculative lookup + the full SMART stack.
    let tree = ShermanTree::create(cluster.blades(), ShermanConfig::with_speculative_lookup());

    // Bulk-load 50k "events": key = timestamp, value = sensor reading.
    for ts in 0..50_000u64 {
        tree.load(ts * 1_000, ts % 97);
    }
    println!(
        "loaded 50k ordered keys across {} blades",
        cluster.blades().len()
    );

    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(1),
    );
    let thread = ctx.create_thread();
    let t = Rc::clone(&tree);

    sim.block_on(async move {
        let coro = thread.coroutine();

        // Point lookups: the first access walks the index and reads the
        // whole 1 KB leaf; repeats hit the speculative cache with a
        // single 16 B READ.
        let slow_start = thread.now();
        let v = t.get(&coro, 12_345_000).await;
        let slow = thread.now() - slow_start;
        let fast_start = thread.now();
        let v2 = t.get(&coro, 12_345_000).await;
        let fast = thread.now() - fast_start;
        assert_eq!(v, v2);
        println!("cold lookup: {slow:?} (index walk + 1 KB leaf READ)");
        println!("warm lookup: {fast:?} (speculative 16 B entry READ)");

        // Insert new events and update existing ones.
        t.insert(&coro, 12_345_500, 4242).await; // between existing keys
        t.insert(&coro, 12_345_000, 7).await; // in-place update
        assert_eq!(t.get(&coro, 12_345_500).await, Some(4242));
        assert_eq!(t.get(&coro, 12_345_000).await, Some(7));

        // Range scan: "all events in a 20-key window starting at ts".
        let window = t.range(&coro, 12_340_000, 20).await;
        println!("range scan from 12_340_000, 20 results:");
        for (k, v) in window.iter().take(5) {
            println!("  ts {k:>12} -> {v}");
        }
        println!("  ... ({} more)", window.len().saturating_sub(5));
        assert!(
            window.windows(2).all(|w| w[0].0 < w[1].0),
            "scan is ordered"
        );
    });

    let s = tree.stats();
    println!(
        "stats: {} lookups, {} leaf READs, spec hits {}/{} attempts, {} splits",
        s.lookups.get(),
        s.leaf_reads.get(),
        s.spec_hits.get(),
        s.spec_attempts.get(),
        s.splits.get()
    );
    // The tree's invariants hold after the writes.
    let pairs = tree.check_consistency();
    println!(
        "consistency walk: {} keys, globally sorted, fences intact",
        pairs.len()
    );
}
