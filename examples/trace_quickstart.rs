//! smart-trace quickstart: run a contended micro-benchmark with a trace
//! sink attached, print the latency-attribution report and export a
//! Chrome trace-event JSON file.
//!
//! Run with: `cargo run --release --example trace_quickstart`
//!
//! Then open `smart.trace.json` at <https://ui.perfetto.dev> — one track
//! per simulated thread, with DB-lock waits, RNIC pipeline service,
//! fabric transfers and backoff sleeps as spans on the virtual timeline.

use smart_lab::smart::{run_microbench, MicrobenchSpec, QpPolicy, SmartConfig};
use smart_lab::smart_rt::Duration;
use smart_lab::smart_trace::{Category, TraceSink};

fn main() {
    // The §3.1 bottleneck in miniature: 48 threads share one QP, so every
    // post serializes on the QP spinlock.
    let threads = 48;
    let mut spec = MicrobenchSpec::new(
        SmartConfig::baseline(QpPolicy::SharedQp, threads),
        threads,
        8, // outstanding work requests per thread
    );
    spec.warmup = Duration::from_micros(500);
    spec.measure = Duration::from_millis(2);

    // Attach a sink; every op is recorded as a "micro" op decomposed into
    // db-lock / credit / pipeline / fabric / backoff time.
    let sink = TraceSink::new();
    spec.trace = Some(sink.clone());

    let report = run_microbench(&spec);
    println!(
        "shared-qp, {threads} threads: {:.1} MOPS over {} ops",
        report.mops, report.ops
    );

    // The plain-text attribution report: per-kind percentiles plus the
    // share of op latency spent in each category.
    print!("{}", sink.attribution().render());
    if let Some(micro) = sink.attribution().kind("micro") {
        println!(
            "db-lock share of op latency: {:.0} % (the paper's §3.1 diagnosis)",
            micro.share(Category::DbLock) * 100.0
        );
    }

    // The Perfetto export. Timestamps are virtual nanoseconds, so the
    // file is byte-identical across same-seed runs.
    let json = sink.chrome_json();
    std::fs::write("smart.trace.json", &json).expect("write smart.trace.json");
    println!(
        "wrote smart.trace.json ({} bytes, {} events kept, {} evicted) — open it at https://ui.perfetto.dev",
        json.len(),
        sink.len(),
        sink.dropped()
    );
}
