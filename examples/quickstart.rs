//! Quickstart: one compute node, two memory blades, the SMART framework.
//!
//! Shows the whole stack in ~60 lines: raw one-sided verbs through a
//! `SmartCoro`, then the conflict-avoiding CAS.
//!
//! Run with: `cargo run --release --example quickstart`

use std::rc::Rc;

use smart_lab::smart::{SmartConfig, SmartContext};
use smart_lab::smart_rnic::{Cluster, ClusterConfig, RemoteAddr};
use smart_lab::smart_rt::Simulation;

fn main() {
    // A deterministic simulation: everything below replays identically
    // for a given seed.
    let mut sim = Simulation::new(42);

    // One compute node, two memory blades, paper-calibrated RNIC model
    // (110 MOPS ceiling, 4+12 doorbells, 1024-entry WQE cache, ...).
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    let blade = Rc::clone(cluster.blade(0));

    // Reserve 64 bytes of remote memory and initialize a counter.
    let offset = blade.alloc(64, 8);
    blade.write_u64(offset, 0);
    let counter = RemoteAddr::new(blade.id(), offset);

    // The SMART framework with everything on: thread-aware doorbells,
    // adaptive work-request throttling, conflict avoidance.
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(1),
    );
    let thread = ctx.create_thread();
    let coro = thread.coroutine();

    let final_value = sim.block_on(async move {
        // Write 8 bytes, read them back.
        coro.write_sync(counter.offset(8), b"disaggr!".to_vec())
            .await;
        let data = coro.read_sync(counter.offset(8), 8).await;
        println!("remote read returned: {:?}", String::from_utf8_lossy(&data));

        // Fetch-and-add on remote memory.
        for _ in 0..10 {
            coro.faa_sync(counter, 1).await;
        }

        // Conflict-avoiding compare-and-swap (§4.3): same semantics as
        // cas()+sync(), plus truncated exponential backoff on failure.
        let old = coro.backoff_cas_sync(counter, 10, 100).await;
        println!("CAS expected 10, found {old}, counter is now 100");

        coro.read_sync(counter, 8).await
    });

    let value = u64::from_le_bytes(final_value.try_into().expect("8 bytes"));
    println!("final counter value: {value}");
    println!("virtual time elapsed: {}", sim.now());
    assert_eq!(value, 100);
}
