//! A disaggregated cache server — the IOPS-bound workload class the
//! paper's introduction motivates. Runs the RACE hash table with 48
//! client threads under a skewed read-heavy mix, first as plain RACE
//! (per-thread QPs) and then as SMART-HT, and prints the throughput and
//! latency gap.
//!
//! Run with: `cargo run --release --example kv_cache`

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use smart_lab::smart::{QpPolicy, SmartConfig, SmartContext};
use smart_lab::smart_race::{RaceConfig, RaceHashTable};
use smart_lab::smart_rnic::{Cluster, ClusterConfig};
use smart_lab::smart_rt::{Duration, Simulation};
use smart_lab::smart_workloads::latency::LatencyRecorder;
use smart_lab::smart_workloads::ycsb::{Mix, YcsbGenerator, YcsbOp};

const THREADS: usize = 48;
const DEPTH: usize = 8;
const KEYS: u64 = 100_000;

fn run(name: &str, cfg: SmartConfig) {
    let mut sim = Simulation::new(7);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    let table = RaceHashTable::create(
        cluster.blades(),
        RaceConfig {
            initial_depth: 4,
            ..Default::default()
        },
    );
    for k in 0..KEYS {
        table.load(&k.to_le_bytes(), format!("value-{k}").as_bytes());
    }

    let ctx = SmartContext::new(cluster.compute(0), cluster.blades(), cfg);
    let ops = Rc::new(Cell::new(0u64));
    let latency = Rc::new(RefCell::new(LatencyRecorder::new()));
    let base = YcsbGenerator::new(KEYS, 0.99, Mix::ReadHeavy, 1);

    for t in 0..THREADS {
        let thread = ctx.create_thread();
        for c in 0..DEPTH {
            let coro = thread.coroutine();
            let table = Rc::clone(&table);
            let mut gen = base.fork((t * DEPTH + c) as u64);
            let ops = Rc::clone(&ops);
            let latency = Rc::clone(&latency);
            let handle = sim.handle();
            sim.spawn(async move {
                loop {
                    let start = handle.now();
                    match gen.next_op() {
                        YcsbOp::Lookup(k) => {
                            let v = table.get(&coro, &k.to_le_bytes()).await;
                            assert!(v.is_some(), "cache must hold every loaded key");
                        }
                        YcsbOp::Update(k) => {
                            let _ = table.update(&coro, &k.to_le_bytes(), b"fresh-value").await;
                        }
                    }
                    ops.set(ops.get() + 1);
                    latency.borrow_mut().record(handle.now() - start);
                }
            });
        }
    }

    // Warm up (lets SMART's tuners converge), then measure 10 ms.
    sim.run_for(Duration::from_millis(40));
    latency.borrow_mut().reset();
    let before = ops.get();
    sim.run_for(Duration::from_millis(10));
    let done = ops.get() - before;

    let lat = latency.borrow();
    println!(
        "{name:>9}: {:6.2} Mop/s   p50 {:7.1} us   p99 {:8.1} us   avg CAS retries {:.2}",
        done as f64 / 0.010 / 1e6,
        lat.median().as_nanos() as f64 / 1e3,
        lat.p99().as_nanos() as f64 / 1e3,
        table.stats().avg_retries(),
    );
}

fn main() {
    println!(
        "disaggregated KV cache: {THREADS} client threads x {DEPTH} coroutines, \
         {KEYS} keys, YCSB read-heavy (zipf 0.99)\n"
    );
    run(
        "RACE",
        SmartConfig::baseline(QpPolicy::PerThreadQp, THREADS),
    );
    run("SMART-HT", SmartConfig::smart_full(THREADS));
    println!("\nSMART-HT wins by removing doorbell contention (§4.1), WQE-cache");
    println!("thrashing (§4.2) and wasted CAS retries (§4.3).");
}
