//! smart-fault quickstart: inject a chaos plan into a RACE hash-table
//! run and watch the recovery layer absorb it.
//!
//! Run with: `cargo run --release --example fault_quickstart [seed]`
//!
//! The plan mixes every fault class: 1 % packet loss (timeout
//! completions, retriable), 0.5 % RNR rejections (retriable), latency
//! spikes, a QP error transition that flushes everything in flight, and
//! a blade crash/restart window that invalidates registered memory.
//! All of it heals, so the workload must finish with every key intact,
//! every write credit conserved — and the whole chaos history replays
//! byte-for-byte from the seed.

use std::rc::Rc;

use smart_lab::smart::{SmartConfig, SmartContext};
use smart_lab::smart_fault::{FaultInjector, FaultPlan};
use smart_lab::smart_race::{RaceConfig, RaceHashTable};
use smart_lab::smart_rnic::{Cluster, ClusterConfig};
use smart_lab::smart_rt::{Duration, Simulation};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a number"))
        .unwrap_or(7);

    let plan = FaultPlan::new()
        .with_packet_loss(0.01)
        .with_rnr(0.005)
        .with_latency_spikes(0.01, Duration::from_micros(5))
        .qp_error_at(Duration::from_micros(200), 0, None)
        .blade_crash_at(Duration::from_micros(400), 1, Duration::from_micros(100));
    println!("plan: {}", plan.describe());

    let mut sim = Simulation::new(seed);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    let injector = FaultInjector::install(&cluster, plan);

    let table = RaceHashTable::create(cluster.blades(), RaceConfig::default());
    for k in 0..500u64 {
        table.load(&k.to_le_bytes(), &k.to_le_bytes());
    }
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::smart_full(4),
    );
    let mut threads = Vec::new();
    let mut joins = Vec::new();
    for t in 0..4u64 {
        let thread = ctx.create_thread();
        threads.push(Rc::clone(&thread));
        let table = Rc::clone(&table);
        joins.push(sim.spawn(async move {
            let coro = thread.coroutine();
            for i in 0..100u64 {
                let key = (10_000 + t * 1_000 + i).to_le_bytes();
                table
                    .insert(&coro, &key, &i.to_le_bytes())
                    .await
                    .expect("insert");
                let _ = table.get(&coro, &(i % 500).to_le_bytes()).await;
            }
        }));
    }
    sim.run_for(Duration::from_secs(1));

    let stats = injector.stats();
    println!(
        "injected: {} total ({} timeouts, {} rnr-naks, {} spikes, \
         {} access errors, {} mr-revocations)",
        stats.total_injected(),
        stats.lost,
        stats.rnr,
        stats.spikes,
        stats.access_errors,
        stats.mr_revoked
    );
    println!(
        "events: {} qp errors, {} blade crashes",
        stats.qp_errors, stats.blade_crashes
    );

    let mut stranded = 0;
    for j in &joins {
        if !j.is_finished() {
            stranded += 1;
        }
    }
    let seen: u64 = threads.iter().map(|t| t.stats().faults_seen.get()).sum();
    let recovered: u64 = threads
        .iter()
        .map(|t| t.stats().faults_recovered.get())
        .sum();
    println!("recovery: {seen} error completions seen, {recovered} WRs recovered");

    let mut witnesses = Vec::new();
    for t in 0..4u64 {
        for i in 0..100u64 {
            witnesses.push((
                (10_000 + t * 1_000 + i).to_le_bytes().to_vec(),
                vec![i.to_le_bytes().to_vec()],
            ));
        }
    }
    let mut violations = table.check_witnesses(&witnesses);
    for thread in &threads {
        violations.extend(thread.throttle().conservation_violations());
    }
    if stranded > 0 || !violations.is_empty() {
        eprintln!("{stranded} stranded clients, violations: {violations:?}");
        std::process::exit(1);
    }
    println!("all clients finished, every key intact, credits conserved");
}
