//! A guided tour of the three scale-up bottlenecks from SMART §3, using
//! the raw micro-benchmark (8-byte READs, as in Figures 3 and 4).
//!
//! Run with: `cargo run --release --example bottleneck_tour`

use smart_lab::smart::{
    run_microbench, MicroOp, MicrobenchSpec, QpPolicy, SmartConfig, SmartContext,
};
use smart_lab::smart_rnic::{Cluster, ClusterConfig, RemoteAddr};
use smart_lab::smart_rt::{Duration, Simulation};

fn bench(policy: QpPolicy, threads: usize, depth: usize, throttle: bool) -> f64 {
    let cfg = SmartConfig::baseline(policy, threads).with_work_req_throttle(throttle);
    let mut spec = MicrobenchSpec::new(cfg, threads, depth);
    spec.op = MicroOp::Read(8);
    spec.warmup = if throttle {
        Duration::from_millis(45) // let the C_max tuner converge
    } else {
        Duration::from_millis(1)
    };
    spec.measure = Duration::from_millis(3);
    run_microbench(&spec).mops
}

fn main() {
    println!("== Bottleneck 1: implicit doorbell contention (§3.1) ==");
    println!("96 threads, depth 8, 8-byte READs:");
    for (name, policy) in [
        ("shared QP", QpPolicy::SharedQp),
        (
            "multiplexed QP (8 threads/QP)",
            QpPolicy::MultiplexedQp { threads_per_qp: 8 },
        ),
        ("per-thread QP (driver doorbells)", QpPolicy::PerThreadQp),
        ("per-thread doorbell (SMART)", QpPolicy::ThreadAwareDoorbell),
    ] {
        println!("  {name:<34} {:6.1} MOPS", bench(policy, 96, 8, false));
    }
    println!("  -> the driver maps many threads' QPs onto 12 medium-latency");
    println!("     doorbells; the spinlock handoffs eat the IOPS budget.\n");

    println!("== Bottleneck 2: WQE-cache thrashing (§3.2) ==");
    println!("per-thread doorbells, 96 threads, growing concurrency depth:");
    for depth in [4usize, 8, 16, 32] {
        println!(
            "  depth {depth:>2} ({:>4} outstanding WRs)   {:6.1} MOPS",
            96 * depth,
            bench(QpPolicy::ThreadAwareDoorbell, 96, depth, false)
        );
    }
    println!("  -> beyond ~1024 outstanding WRs the on-chip WQE cache spills");
    println!("     to host DRAM over PCIe and throughput collapses.\n");

    println!("== ...and the fix: adaptive work-request throttling (§4.2) ==");
    println!(
        "  depth 32 with throttling            {:6.1} MOPS",
        bench(QpPolicy::ThreadAwareDoorbell, 96, 32, true)
    );
    println!("  -> Algorithm 1 caps credits near the cache-friendly sweet spot.");
    println!();
    println!("Bottleneck 3 (wasted CAS retries, §3.3/§4.3) is an application-");
    println!("level effect — see the kv_cache example and the fig14 bench.");
    println!();

    println!("== Diagnosing it yourself: SmartContext::contention_report ==");
    let mut sim = Simulation::new(1);
    let cluster = Cluster::new(sim.handle(), ClusterConfig::new(1, 2));
    for b in cluster.blades() {
        b.alloc(1 << 20, 8);
    }
    let ctx = SmartContext::new(
        cluster.compute(0),
        cluster.blades(),
        SmartConfig::baseline(QpPolicy::PerThreadQp, 48),
    );
    for _ in 0..48 {
        let thread = ctx.create_thread();
        let coro = thread.coroutine();
        let addr = RemoteAddr::new(cluster.blade(0).id(), 64);
        sim.spawn(async move {
            loop {
                coro.read_sync(addr, 8).await;
            }
        });
    }
    sim.run_for(Duration::from_millis(2));
    print!("{}", ctx.contention_report());
}
